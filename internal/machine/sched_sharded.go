package machine

// Sharded lock-free scheduler (DESIGN.md §3.2). The serial scheduler
// in machine.go serializes every operation behind one baton; this file
// implements the default mode, where threads run genuinely in parallel
// and synchronize only through per-thread published clocks:
//
//   - Every thread owns one padded atomic slot holding its published
//     virtual clock — the pre-operation clock of whatever it executes
//     next. Finished threads publish ^uint64(0).
//   - Operations that touch only thread-private state (Compute, Call,
//     Return, a Syscall outside a transaction, ...) commute with every
//     concurrent operation on other threads and run ungated.
//   - Operations that touch shared machine state (memory, caches, the
//     HTM engine, sample delivery into the collector) execute at their
//     canonical position: a thread proceeds past the gate only once
//     its (published clock, ID) is lexicographically smaller than
//     every other live thread's — i.e. exactly when the canonical
//     per-op schedule (always advance the live thread with the
//     smallest (clock, ID)) would run this operation. Because clocks
//     are monotonic and publishes happen only at operation boundaries,
//     gated sections are mutually exclusive and totally ordered by
//     (clock, ID), which is the serial schedule's order — so every
//     shared-state effect, abort, and sample delivery lands in the
//     same total order the serial scheduler produces, byte-identical.
//
// The scheduler mutex survives only for slow-path bookkeeping: status
// snapshots at quantum boundaries, terminal-result reporting, and the
// diagnostic dumps.

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"time"
)

// paddedClock is one thread's published-clock slot, padded to a cache
// line so gate scans by other threads never false-share with the
// owner's publishes.
type paddedClock struct {
	v atomic.Uint64
	_ [56]byte
}

// clockDone is published by a finished thread: every gate comparison
// orders it after any real clock, so waiters run past the dead thread.
const clockDone = math.MaxUint64

// gate blocks until this thread's pending operation is the canonical
// minimum: (published clock, ID) lexicographically below every other
// live thread's published (clock, ID). Once the condition holds for a
// given published clock it holds forever (other clocks only grow), so
// the result is cached in t.gated until the next publish; a cached
// lower bound on the other threads' clocks (t.gClock, t.gID) lets
// repeat gates at a still-smaller key pass without rescanning.
// Parks (never returning) if the machine stops while waiting.
func (t *Thread) gate() {
	if t.gated {
		return
	}
	key := t.lastPub
	if t.hasG && (key < t.gClock || (key == t.gClock && t.ID < t.gID)) {
		t.gated = true
		return
	}
	t.gateSlow(key)
}

func (t *Thread) gateSlow(key uint64) {
	s := t.m.sched
	spins := 0
	for {
		minC, minID := uint64(clockDone), len(s.clocks)
		for i := range s.clocks {
			if i == t.ID {
				continue
			}
			if c := s.clocks[i].v.Load(); c < minC || (c == minC && i < minID) {
				minC, minID = c, i
			}
		}
		if key < minC || (key == minC && t.ID < minID) {
			t.hasG, t.gClock, t.gID = true, minC, minID
			t.gated = true
			return
		}
		if s.stopFlag.Load() {
			t.parkSharded(false)
		}
		// The canonical-minimum thread never waits here, so the machine
		// always makes progress; everyone else backs off. Timed sleeps
		// never affect the schedule — ordering is by virtual clocks.
		spins++
		if spins < 64 {
			runtime.Gosched()
		} else {
			d := time.Duration(spins-63) * time.Microsecond
			if d > 100*time.Microsecond {
				d = 100 * time.Microsecond
			}
			time.Sleep(d)
		}
	}
}

// publish makes the thread's advanced clock visible to gate scans on
// other threads and invalidates the proven-canonical flag. Operations
// that did not move the clock keep the flag: the gate condition for an
// unchanged key can never be un-proven.
func (t *Thread) publish() {
	if t.clock != t.lastPub {
		t.lastPub = t.clock
		t.pub.Store(t.clock)
		t.gated = false
	}
}

// Exclusive runs fn at the thread's current canonical position,
// mutually exclusive with every other thread's Exclusive sections and
// shared-state operations, in the exact order the serial scheduler
// would run it. Runtime libraries layered on the machine (internal/rtm,
// instrumentation sinks) use it to mutate Go-level state shared across
// simulated threads — per-lock statistics, event logs — which the
// serial scheduler ordered for free. fn must not invoke thread
// operations. Under the serial scheduler this is a direct call.
func (t *Thread) Exclusive(fn func()) {
	if t.sharded {
		t.gate()
	}
	fn()
}

// quantumTick is the sharded scheduler's per-quantum slow path: refresh
// the status snapshot for diagnostic dumps, feed the watchdog, and pick
// up a pending cancellation — the same bookkeeping a serial rendezvous
// does, minus any scheduling decision.
func (t *Thread) quantumTick() {
	s := t.m.sched
	t.sinceYield = 0
	if s.stopFlag.Load() {
		t.parkSharded(false)
	}
	s.mu.Lock()
	st := statusOf(t)
	st.ops = t.opCount
	s.status[t.ID] = st
	s.progress.Add(1)
	cancel := s.cancelErr
	s.mu.Unlock()
	if cancel != nil {
		if s.stopFlag.CompareAndSwap(false, true) {
			t.reportAndParkSharded(fmt.Errorf("%w at a quantum boundary: %w", ErrCanceled, cancel))
		}
		t.parkSharded(false)
	}
}

// livelockSharded handles a thread whose clock passed MaxCycles: wait
// to become the canonical minimum (if every thread is over budget, the
// slowest is; if others finish first, their done-clocks order after
// ours), then report livelock. Never returns.
func (t *Thread) livelockSharded() {
	t.gate() // parks instead if the machine already stopped
	s := t.m.sched
	if s.stopFlag.CompareAndSwap(false, true) {
		s.mu.Lock()
		st := statusOf(t)
		st.ops = t.opCount
		s.status[t.ID] = st
		dump := dumpStatus(s.status, -1)
		s.mu.Unlock()
		t.reportAndParkSharded(fmt.Errorf(
			"machine: watchdog: slowest live thread passed MaxCycles=%d without completing (livelock?)\n%s",
			t.maxCycles, dump))
	}
	t.parkSharded(false)
}

// parkSharded retires the goroutine after the machine stopped: record
// a final status snapshot and block forever, exactly as serial threads
// park at a rendezvous. Never returns.
func (t *Thread) parkSharded(decremented bool) {
	s := t.m.sched
	if !decremented {
		s.busy.Add(-1)
	}
	s.mu.Lock()
	st := statusOf(t)
	st.ops = t.opCount
	s.status[t.ID] = st
	t.parkLocked()
}

// reportAndParkSharded quiesces the machine — every other thread
// observed stopFlag and parked, or finished — then delivers the
// terminal result and parks. Quiescing first is what makes machine
// state (clocks, ground truth, an attached collector) safely readable
// the moment Run returns. Never returns.
func (t *Thread) reportAndParkSharded(err error) {
	s := t.m.sched
	s.busy.Add(-1)
	for spins := 0; s.busy.Load() != 0; spins++ {
		if spins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(10 * time.Microsecond)
		}
	}
	s.mu.Lock()
	s.reportLocked(err)
	t.parkLocked()
}

// finishSharded is finish() for the sharded scheduler: publish the
// done-clock so waiters run past this thread, retire from the busy
// count, and report the terminal result — the workload panic, or nil
// when the last thread completes.
func (t *Thread) finishSharded(panicked any) {
	s := t.m.sched
	if panicked != nil {
		// Stop the world before publishing the done-clock: gate waiters
		// park rather than running past the failure point.
		won := s.stopFlag.CompareAndSwap(false, true)
		t.pub.Store(clockDone)
		s.mu.Lock()
		st := statusOf(t)
		st.ops = t.opCount
		st.done = true
		s.status[t.ID] = st
		s.progress.Add(1)
		s.mu.Unlock()
		s.busy.Add(-1)
		if won {
			// Quiesce — every other thread parked or finished — then
			// report, so machine state is safely readable after Run.
			for spins := 0; s.busy.Load() != 0; spins++ {
				if spins < 64 {
					runtime.Gosched()
				} else {
					time.Sleep(10 * time.Microsecond)
				}
			}
			s.mu.Lock()
			s.reportLocked(panicErr(t.ID, panicked))
			s.mu.Unlock()
		}
		return
	}
	t.pub.Store(clockDone)
	s.mu.Lock()
	st := statusOf(t)
	st.ops = t.opCount
	st.done = true
	s.status[t.ID] = st
	s.progress.Add(1)
	s.mu.Unlock()
	if s.busy.Add(-1) == 0 {
		// Last thread out reports completion. The CAS keeps a racing
		// cancellation or failure from being overridden — but if every
		// thread already finished, completion wins, as in serial mode.
		if s.stopFlag.CompareAndSwap(false, true) {
			s.mu.Lock()
			s.reportLocked(nil)
			s.mu.Unlock()
		}
	}
}
