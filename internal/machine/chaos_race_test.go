package machine_test

// Race stress: the lockstep scheduler serializes all simulated-thread
// state through channel rendezvous, so even with 8+ real goroutines,
// fault storms, PMU interrupts, and a live collector, `go test -race`
// must stay silent and the workload result must stay correct.

import (
	"testing"

	"txsampler/internal/core"
	"txsampler/internal/faults"
	"txsampler/internal/machine"
	"txsampler/internal/mem"
	"txsampler/internal/pmu"
	"txsampler/internal/rtm"
)

func TestChaosStormRaceStress(t *testing.T) {
	const (
		threads = 8
		perThr  = 150
	)
	plan := faults.Presets["all"]
	cfg := machine.Config{
		Threads: threads,
		Seed:    7,
		Periods: pmu.Periods{pmu.Cycles: 500, pmu.TxAbort: 3, pmu.TxCommit: 7, pmu.Loads: 97, pmu.Stores: 89},
		Faults:  plan,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	m := machine.New(cfg)
	col := core.Attach(m)
	lock := rtm.NewLock(m)
	lock.Policy = rtm.AdaptivePolicy()
	ctr := m.Mem.AllocLines(1)

	if err := m.RunAll(func(th *machine.Thread) {
		for i := 0; i < perThr; i++ {
			lock.Run(th, func() {
				th.Add(ctr, 1)
				th.Compute(20)
			})
		}
	}); err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}

	if got, want := m.Mem.Load(ctr), mem.Word(threads*perThr); got != want {
		t.Fatalf("counter = %d, want %d: faults corrupted committed state", got, want)
	}
	if m.FaultStats().Total() == 0 {
		t.Fatal("storm plan injected nothing")
	}
	// The collector survived malformed input; its quality counters plus
	// machine stats must show the degradation.
	q := col.Quality()
	q.Injected = m.FaultStats()
	if q.Degraded() == 0 {
		t.Fatal("Degraded() = 0 under fault storm")
	}
}
