package machine

// Failure injection: the machine must fail fast and loudly on broken
// workloads and broken profilers, never hang or corrupt state.

import (
	"strings"
	"testing"

	"txsampler/internal/pmu"
)

func TestPanicWhileHoldingSpinLockFailsFast(t *testing.T) {
	// Thread 1 dies while other threads spin on a word it owns; the
	// scheduler must surface the panic instead of spinning forever.
	m := New(Config{Threads: 3})
	lock := m.Mem.AllocLines(1)
	err := m.Run(
		func(t *Thread) {
			for t.Load(lock) == 0 {
				t.Compute(2)
			}
		},
		func(t *Thread) {
			t.AtomicCAS(lock, 0, 1)
			t.Store(lock, 0)
			panic("injected fault")
		},
		func(t *Thread) {
			for t.Load(lock) == 0 {
				t.Compute(2)
			}
		},
	)
	if err == nil || !strings.Contains(err.Error(), "injected fault") {
		t.Fatalf("err = %v, want the injected fault", err)
	}
}

type panickyHandler struct{ after int }

func (h *panickyHandler) HandleSample(s *Sample) {
	h.after--
	if h.after <= 0 {
		panic("profiler bug")
	}
}

func TestPanickingHandlerSurfaces(t *testing.T) {
	var p pmu.Periods
	p[pmu.Cycles] = 100
	m := New(Config{Threads: 2, Periods: p})
	m.SetHandler(&panickyHandler{after: 3})
	err := m.RunAll(func(t *Thread) {
		for i := 0; i < 100; i++ {
			t.Compute(50)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "profiler bug") {
		t.Fatalf("err = %v, want the handler panic", err)
	}
}

func TestRunTwicePanics(t *testing.T) {
	m := New(Config{Threads: 1})
	if err := m.RunAll(func(t *Thread) { t.Compute(1) }); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	_ = m.RunAll(func(t *Thread) {})
}

func TestWrongBodyCountPanics(t *testing.T) {
	m := New(Config{Threads: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched body count did not panic")
		}
	}()
	_ = m.Run(func(t *Thread) {})
}

func TestReturnWithoutCallPanicsAsWorkloadError(t *testing.T) {
	m := New(Config{Threads: 1})
	err := m.RunAll(func(t *Thread) { t.Return() })
	if err == nil || !strings.Contains(err.Error(), "empty call stack") {
		t.Fatalf("err = %v", err)
	}
}

func TestTxCommitOutsideTransactionIsWorkloadError(t *testing.T) {
	m := New(Config{Threads: 1})
	err := m.RunAll(func(t *Thread) { t.TxCommit() })
	if err == nil || !strings.Contains(err.Error(), "TxCommit outside") {
		t.Fatalf("err = %v", err)
	}
}

func TestAbortSentinelEscapingAttemptIsWorkloadError(t *testing.T) {
	// TxBegin without Attempt: the abort unwinds to the thread root
	// and must be reported, not swallowed.
	m := New(Config{Threads: 1})
	err := m.RunAll(func(t *Thread) {
		t.TxBegin()
		t.Syscall("boom")
		t.TxCommit()
	})
	if err == nil {
		t.Fatal("escaped abort sentinel not reported")
	}
}
