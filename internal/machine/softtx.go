package machine

import "txsampler/internal/mem"

// SoftTx is a software-transactional-memory interposer. A runtime
// layered above the machine (the rtm package's STM slow path) installs
// one on a thread for the duration of an instrumented code region;
// the machine then reports every non-transactional memory access the
// region performs, the simulated analogue of compiler-inserted STM
// read/write barriers.
//
// Hooks run outside the operation's own scheduling step and may
// themselves perform thread operations (Compute, Exclusive, atomics);
// the machine suppresses nested hook delivery while one is running.
// Hooks never fire for accesses inside a hardware transaction —
// hardware speculation subsumes the software instrumentation — nor
// for the machine's own bookkeeping.
//
// OnStore may panic to unwind an aborted software transaction out of
// the workload body; the interposer's owner is responsible for
// recovering its own sentinel (the machine does not).
type SoftTx interface {
	// OnLoad is delivered after a non-transactional Load completes,
	// with the address and the value read.
	OnLoad(a mem.Addr, v mem.Word)
	// OnStore is delivered before a non-transactional Store (or the
	// write half of an atomic read-modify-write) executes. When it
	// returns, the write proceeds.
	OnStore(a mem.Addr)
}

// SetSoftTx installs (or, with nil, removes) the thread's software-TM
// interposer. Installing also clears the nested-hook suppression flag,
// so a runtime that unwound out of a hook via panic can reset cleanly.
func (t *Thread) SetSoftTx(s SoftTx) {
	t.soft = s
	t.inSoftHook = false
}

// softLoad delivers a completed non-transactional load to the
// interposer, if one is installed and we are not already inside a
// hook.
func (t *Thread) softLoad(a mem.Addr, v mem.Word) {
	if t.soft == nil || t.tx != nil || t.inSoftHook {
		return
	}
	t.inSoftHook = true
	t.soft.OnLoad(a, v)
	t.inSoftHook = false
}

// softStore delivers an impending non-transactional write to the
// interposer. OnStore may panic (aborting software transaction); the
// suppression flag is then reset by the owner's SetSoftTx(nil).
func (t *Thread) softStore(a mem.Addr) {
	if t.soft == nil || t.tx != nil || t.inSoftHook {
		return
	}
	t.inSoftHook = true
	t.soft.OnStore(a)
	t.inSoftHook = false
}
