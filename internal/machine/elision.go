package machine

import (
	"fmt"
	"strings"
)

// ElisionMode selects whether lock-shaped critical sections
// (rtm.ElidedLock) speculate through the TM runtime instead of
// acquiring their lock. The zero value is ElisionOff: elidable locks
// behave as plain locks and the machine is bit-for-bit the pre-elision
// machine. ElisionOn maps Lock/Unlock onto TM_BEGIN/TM_END with the
// full adaptive fallback ladder (HTM retry, then the configured hybrid
// slow path, then actually acquiring the lock).
type ElisionMode int

const (
	// ElisionOff: elidable locks acquire their lock word directly; no
	// speculation. The default.
	ElisionOff ElisionMode = iota
	// ElisionOn: elidable locks run their critical sections through
	// the TM fallback ladder and only acquire the lock when both the
	// hardware and (policy permitting) software paths fail.
	ElisionOn

	numElisionModes
)

var elisionNames = [...]string{
	ElisionOff: "off",
	ElisionOn:  "on",
}

// String returns the flag spelling of the mode.
func (e ElisionMode) String() string {
	if e < 0 || int(e) >= len(elisionNames) {
		return fmt.Sprintf("ElisionMode(%d)", int(e))
	}
	return elisionNames[e]
}

// Valid reports whether e is a defined mode.
func (e ElisionMode) Valid() bool { return e >= 0 && e < numElisionModes }

// ElisionModes lists every defined mode in flag spelling, for CLI
// usage strings.
func ElisionModes() []string {
	out := make([]string, len(elisionNames))
	copy(out, elisionNames[:])
	return out
}

// ParseElisionMode parses a flag spelling ("off", "on").
func ParseElisionMode(s string) (ElisionMode, error) {
	for i, name := range elisionNames {
		if s == name {
			return ElisionMode(i), nil
		}
	}
	return 0, fmt.Errorf("machine: unknown elision mode %q (want one of %s)",
		s, strings.Join(ElisionModes(), ", "))
}
