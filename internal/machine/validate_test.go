package machine

// Config validation: frontends turn user flags into configs, so every
// invalid combination must surface as a descriptive error from
// Validate (and as a panic only from New, which is API misuse).

import (
	"strings"
	"testing"

	"txsampler/internal/cache"
	"txsampler/internal/faults"
	"txsampler/internal/htm"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // "" = valid
	}{
		{"zero-defaults", Config{}, ""},
		{"typical", Config{Threads: 8, LBRDepth: 16}, ""},
		{"too-many-threads", Config{Threads: 65}, "out of range"},
		{"negative-threads", Config{Threads: -1}, "out of range"},
		{"negative-lbr", Config{Threads: 2, LBRDepth: -3}, "LBR depth"},
		{"negative-readlines", Config{Threads: 2, MaxReadLines: -1}, "MaxReadLines"},
		{"bad-cache-sets", Config{Threads: 2, Cache: cache.Config{Sets: 3, Ways: 2}}, "power of two"},
		{"negative-latency", Config{Threads: 2, Cache: cache.Config{Sets: 4, Ways: 2, HitLatency: -1}}, "latency"},
		{"bad-fault-rate", Config{Threads: 2, Faults: faults.Plan{SampleDropRate: 1.5}}, "drop"},
		{"bad-storm", Config{Threads: 2, Faults: faults.Plan{StormPeriod: 10, StormLength: 20}}, "storm"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		switch {
		case c.want == "" && err != nil:
			t.Errorf("%s: unexpected error %v", c.name, err)
		case c.want != "" && err == nil:
			t.Errorf("%s: invalid config accepted", c.name)
		case c.want != "" && !strings.Contains(err.Error(), c.want):
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an invalid config")
		}
	}()
	New(Config{Threads: 2, Cache: cache.Config{Sets: 5, Ways: 1}})
}

func TestSubConfigValidate(t *testing.T) {
	if err := (htm.Config{Sets: 0, Ways: 4}).Validate(); err == nil {
		t.Error("htm: zero sets accepted")
	}
	if err := (htm.Config{Sets: 16, Ways: 4, MaxReadLines: -1}).Validate(); err == nil {
		t.Error("htm: negative MaxReadLines accepted")
	}
	if err := (htm.Config{Sets: 16, Ways: 4}).Validate(); err != nil {
		t.Errorf("htm: valid config rejected: %v", err)
	}
	if err := (cache.Config{}).Validate(); err == nil {
		t.Error("cache: zero config accepted (callers must substitute DefaultConfig)")
	}
	if err := cache.DefaultConfig().Validate(); err != nil {
		t.Errorf("cache: DefaultConfig rejected: %v", err)
	}
}
