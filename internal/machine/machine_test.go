package machine

import (
	"testing"

	"txsampler/internal/htm"
	"txsampler/internal/mem"
	"txsampler/internal/pmu"
)

func single() *Machine { return New(Config{Threads: 1}) }

func TestComputeAdvancesClock(t *testing.T) {
	m := single()
	err := m.RunAll(func(t *Thread) { t.Compute(100) })
	if err != nil {
		t.Fatal(err)
	}
	if m.Elapsed() != 100*DefaultCosts().Compute {
		t.Fatalf("Elapsed = %d", m.Elapsed())
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	m := single()
	a := m.Mem.AllocWords(2)
	var got mem.Word
	err := m.RunAll(func(t *Thread) {
		t.Store(a, 11)
		t.Store(a.Offset(1), 22)
		got = t.Load(a) + t.Load(a.Offset(1))
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 33 {
		t.Fatalf("got %d, want 33", got)
	}
}

func TestAtomicAddNoLostUpdates(t *testing.T) {
	m := New(Config{Threads: 4})
	a := m.Mem.AllocWords(1)
	err := m.RunAll(func(t *Thread) {
		for i := 0; i < 50; i++ {
			t.AtomicAdd(a, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := m.Mem.Load(a); v != 200 {
		t.Fatalf("counter = %d, want 200", v)
	}
}

func TestPlainAddCanLoseUpdates(t *testing.T) {
	// Non-atomic read-modify-write across threads is racy by design;
	// the simulation must expose the interleaving, not hide it.
	m := New(Config{Threads: 8, Seed: 3})
	a := m.Mem.AllocWords(1)
	err := m.RunAll(func(t *Thread) {
		for i := 0; i < 100; i++ {
			t.Add(a, 1)
			t.Compute(t.Rand().Intn(5))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := m.Mem.Load(a); v > 800 {
		t.Fatalf("counter = %d > 800: impossible", v)
	}
}

func TestCommittedTxVisible(t *testing.T) {
	m := single()
	a := m.Mem.AllocWords(1)
	err := m.RunAll(func(t *Thread) {
		if ab := t.Attempt(func() { t.Store(a, 5) }); ab != nil {
			t.Compute(1) // unreachable: single thread cannot conflict
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := m.Mem.Load(a); v != 5 {
		t.Fatalf("memory = %d after commit, want 5", v)
	}
	if g := m.GroundTruth(); g.Commits != 1 {
		t.Fatalf("commits = %d", g.Commits)
	}
}

func TestExplicitAbortDiscardsStores(t *testing.T) {
	m := single()
	a := m.Mem.AllocWords(1)
	m.Mem.Store(a, 1)
	var info *AbortInfo
	err := m.RunAll(func(t *Thread) {
		info = t.Attempt(func() {
			t.Store(a, 99)
			t.TxAbort()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if info == nil || info.Cause != htm.Explicit {
		t.Fatalf("abort info = %+v", info)
	}
	if v := m.Mem.Load(a); v != 1 {
		t.Fatalf("aborted store leaked: memory = %d", v)
	}
}

func TestTxReadsOwnBufferedStore(t *testing.T) {
	m := single()
	a := m.Mem.AllocWords(1)
	m.Mem.Store(a, 10)
	var seen mem.Word
	err := m.RunAll(func(t *Thread) {
		t.Attempt(func() {
			t.Store(a, 20)
			seen = t.Load(a)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 20 {
		t.Fatalf("in-tx load = %d, want own store 20", seen)
	}
}

func TestSyscallAbortsTransaction(t *testing.T) {
	m := single()
	var info *AbortInfo
	err := m.RunAll(func(t *Thread) {
		info = t.Attempt(func() { t.Syscall("write") })
	})
	if err != nil {
		t.Fatal(err)
	}
	if info == nil || info.Cause != htm.Sync {
		t.Fatalf("abort = %+v, want sync abort", info)
	}
	if info.Cause.Retryable() {
		t.Fatal("sync abort reported retryable")
	}
}

func TestCapacityAbort(t *testing.T) {
	m := single()
	cfg := m.Config().Cache
	// Write Ways+1 lines mapping to the same L1 set.
	stride := mem.Addr(mem.LineSize * cfg.Sets)
	base := m.Mem.Alloc(int(stride)*(cfg.Ways+2), mem.LineSize*mem.Addr(cfg.Sets))
	var info *AbortInfo
	err := m.RunAll(func(t *Thread) {
		info = t.Attempt(func() {
			for i := 0; i <= cfg.Ways; i++ {
				t.Store(base+mem.Addr(i)*stride, 1)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if info == nil || info.Cause != htm.Capacity || info.CapKind != htm.CapacityWrite {
		t.Fatalf("abort = %+v, want write-capacity", info)
	}
}

func TestConflictAbortBetweenThreads(t *testing.T) {
	// Both threads transactionally increment the same word many
	// times with retry-until-commit: conflicts must occur, and the
	// final count must still be exact (committed transactions are
	// serializable).
	m := New(Config{Threads: 2, Seed: 7})
	a := m.Mem.AllocWords(1)
	const per = 200
	err := m.RunAll(func(t *Thread) {
		for i := 0; i < per; i++ {
			for {
				if ab := t.Attempt(func() {
					v := t.Load(a)
					t.Compute(20)
					t.Store(a, v+1)
				}); ab == nil {
					break
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := m.Mem.Load(a); v != 2*per {
		t.Fatalf("counter = %d, want %d", v, 2*per)
	}
	g := m.GroundTruth()
	if g.Aborts[htm.Conflict] == 0 {
		t.Fatal("no conflict aborts under heavy contention")
	}
	if g.Commits != 2*per {
		t.Fatalf("commits = %d, want %d", g.Commits, 2*per)
	}
}

func TestNonTxWriteAbortsRemoteTx(t *testing.T) {
	m := New(Config{Threads: 2})
	a := m.Mem.AllocWords(1)
	flag := m.Mem.AllocWords(1)
	var cause htm.Cause
	err := m.Run(
		func(t *Thread) {
			ab := t.Attempt(func() {
				t.Load(a)
				t.Store(flag, 1) // signal intent via a different line
				for i := 0; i < 2000; i++ {
					t.Compute(10)
				}
			})
			if ab != nil {
				cause = ab.Cause
			}
		},
		func(t *Thread) {
			t.Compute(500) // let thread 0 enter its transaction
			t.Store(a, 7)  // non-transactional conflicting write
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if cause != htm.Conflict {
		t.Fatalf("cause = %v, want conflict from non-tx write", cause)
	}
}

func TestStackRollsBackOnAbort(t *testing.T) {
	m := single()
	var depthInTx, depthAfter int
	err := m.RunAll(func(t *Thread) {
		t.Func("outer", func() {
			ab := t.Attempt(func() {
				t.Func("inner", func() {
					depthInTx = len(t.CallStack())
					t.Syscall("boom")
				})
			})
			if ab == nil {
				panic("expected abort")
			}
			depthAfter = len(t.CallStack())
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if depthInTx != 3 { // thread_root, outer, inner
		t.Fatalf("depth in tx = %d, want 3", depthInTx)
	}
	if depthAfter != 2 { // inner frame rolled back
		t.Fatalf("depth after abort = %d, want 2", depthAfter)
	}
}

func TestSiteRollsBackOnAbort(t *testing.T) {
	m := single()
	var after string
	err := m.RunAll(func(t *Thread) {
		t.At("before_tx")
		t.Attempt(func() {
			t.At("inside_tx")
			t.Syscall("x")
		})
		after = t.CallStack()[0].Site
	})
	if err != nil {
		t.Fatal(err)
	}
	if after != "before_tx" {
		t.Fatalf("site after abort = %q, want %q", after, "before_tx")
	}
}

// collectHandler records every delivered sample.
type collectHandler struct{ samples []*Sample }

// Clone: the machine reuses the delivered sample across deliveries.
func (h *collectHandler) HandleSample(s *Sample) { h.samples = append(h.samples, s.Clone()) }

func TestSamplingDeliversAndAborts(t *testing.T) {
	var periods pmu.Periods
	periods[pmu.Cycles] = 500
	m := New(Config{Threads: 2, Periods: periods, Seed: 1})
	h := &collectHandler{}
	m.SetHandler(h)
	a := m.Mem.AllocWords(64)
	err := m.RunAll(func(t *Thread) {
		for i := 0; i < 100; i++ {
			for {
				if ab := t.Attempt(func() {
					t.Compute(50)
					t.Add(a.Offset(t.ID*8), 1)
				}); ab == nil {
					break
				}
			}
			t.Compute(50)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.samples) == 0 {
		t.Fatal("no samples delivered")
	}
	var inTx, outTx int
	for _, s := range h.samples {
		if s.TruthInTx {
			inTx++
			if len(s.LBR) == 0 || !s.LBR[0].Abort {
				t.Fatal("in-tx sample lacks LBR abort bit on the top entry")
			}
		} else {
			outTx++
			if len(s.LBR) > 0 && s.LBR[0].Abort {
				t.Fatal("out-of-tx sample has abort bit set")
			}
		}
	}
	if inTx == 0 || outTx == 0 {
		t.Fatalf("sample mix inTx=%d outTx=%d: want both kinds", inTx, outTx)
	}
	g := m.GroundTruth()
	if g.Aborts[htm.Interrupt] == 0 {
		t.Fatal("sampling produced no interrupt-induced aborts")
	}
	if g.Commits != 200 {
		t.Fatalf("commits = %d, want 200 despite sampling aborts", g.Commits)
	}
}

func TestAbortSamplesCarryWeightAndCause(t *testing.T) {
	var periods pmu.Periods
	periods[pmu.TxAbort] = 1 // sample every abort
	m := New(Config{Threads: 1, Periods: periods})
	h := &collectHandler{}
	m.SetHandler(h)
	err := m.RunAll(func(t *Thread) {
		t.Attempt(func() {
			t.Compute(100)
			t.Syscall("x")
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	var abortSamples []*Sample
	for _, s := range h.samples {
		if s.Event == pmu.TxAbort {
			abortSamples = append(abortSamples, s)
		}
	}
	if len(abortSamples) != 1 {
		t.Fatalf("abort samples = %d, want 1", len(abortSamples))
	}
	s := abortSamples[0]
	if s.Abort == nil || s.Abort.Cause != htm.Sync {
		t.Fatalf("abort sample cause = %+v", s.Abort)
	}
	if s.Abort.Weight < 100 {
		t.Fatalf("weight = %d, want >= 100 (cycles burned in tx)", s.Abort.Weight)
	}
}

func TestMemorySamplesCarryAddress(t *testing.T) {
	var periods pmu.Periods
	periods[pmu.Stores] = 3
	m := New(Config{Threads: 1, Periods: periods})
	h := &collectHandler{}
	m.SetHandler(h)
	a := m.Mem.AllocWords(16)
	err := m.RunAll(func(t *Thread) {
		for i := 0; i < 30; i++ {
			t.Store(a.Offset(i%16), 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range h.samples {
		if s.Event == pmu.Stores {
			found = true
			if !s.HasAddr || !s.IsWrite || s.Addr < a || s.Addr >= a.Offset(16) {
				t.Fatalf("bad store sample: %+v", s)
			}
		}
	}
	if !found {
		t.Fatal("no store samples")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		var periods pmu.Periods
		periods[pmu.Cycles] = 700
		m := New(Config{Threads: 4, Seed: 42, Periods: periods})
		m.SetHandler(&collectHandler{})
		a := m.Mem.AllocWords(8)
		if err := m.RunAll(func(t *Thread) {
			for i := 0; i < 50; i++ {
				for {
					if ab := t.Attempt(func() {
						t.Add(a.Offset(t.Rand().Intn(8)), 1)
					}); ab == nil {
						break
					}
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		g := m.GroundTruth()
		var aborts uint64
		for _, n := range g.Aborts {
			aborts += n
		}
		return m.Elapsed(), g.Commits, aborts
	}
	e1, c1, a1 := run()
	e2, c2, a2 := run()
	if e1 != e2 || c1 != c2 || a1 != a2 {
		t.Fatalf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", e1, c1, a1, e2, c2, a2)
	}
}

func TestWorkloadPanicIsReported(t *testing.T) {
	m := New(Config{Threads: 2})
	err := m.Run(
		func(t *Thread) { t.Compute(10) },
		func(t *Thread) { panic("workload bug") },
	)
	if err == nil {
		t.Fatal("workload panic not reported")
	}
}

func TestSchedulerInterleavesByClock(t *testing.T) {
	// A thread doing cheap ops must complete many more operations
	// than one doing expensive ops over the same simulated window.
	m := New(Config{Threads: 2})
	var cheap, costly int
	err := m.Run(
		func(t *Thread) {
			for t.Clock() < 10_000 {
				t.Compute(1)
				cheap++
			}
		},
		func(t *Thread) {
			for t.Clock() < 10_000 {
				t.Compute(100)
				costly++
			}
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if cheap < costly*50 {
		t.Fatalf("cheap=%d costly=%d: scheduler not clock-proportional", cheap, costly)
	}
}

func TestLBRRecordsCallsAndReturns(t *testing.T) {
	var periods pmu.Periods
	periods[pmu.Cycles] = 100_000 // effectively off; we inspect via sample at end
	m := New(Config{Threads: 1, Periods: periods})
	h := &collectHandler{}
	m.SetHandler(h)
	err := m.RunAll(func(t *Thread) {
		t.Func("f", func() {
			t.Func("g", func() { t.Compute(1) })
		})
		t.Compute(100_000) // force a cycles sample now
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.samples) == 0 {
		t.Fatal("no sample")
	}
	var calls, rets int
	for _, e := range h.samples[0].LBR {
		switch e.Kind {
		case 0: // lbr.KindCall
			calls++
		case 1: // lbr.KindReturn
			rets++
		}
	}
	if calls < 2 || rets < 2 {
		t.Fatalf("LBR calls=%d rets=%d, want >=2 each", calls, rets)
	}
}
