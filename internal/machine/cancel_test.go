package machine

// Cooperative cancellation: Config.Context stops the run at the next
// quantum boundary, Run reports an error wrapping both ErrCanceled and
// the context's cause, and the machine state stays readable so callers
// can flush a partial profile.

import (
	"context"
	"errors"
	"testing"
	"time"

	"txsampler/internal/mem"
)

func cancelWorkload(t *Thread, a mem.Addr, iters int, after func(i int)) {
	for i := 0; i < iters; i++ {
		t.Func("worker", func() {
			for {
				if t.Attempt(func() {
					t.Add(a.Offset(i%8), 1)
					t.Compute(5)
				}) == nil {
					break
				}
				t.Compute(20)
			}
		})
		if after != nil {
			after(i)
		}
	}
}

func TestRunCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := New(Config{Threads: 2, Seed: 1, StartSkew: 64, Context: ctx})
	a := m.Mem.AllocWords(8)
	err := m.RunAll(func(th *Thread) { cancelWorkload(th, a, 100, nil) })
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled cause", err)
	}
}

func TestRunCanceledMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := New(Config{Threads: 4, Seed: 7, StartSkew: 512, Quantum: 8, Context: ctx})
	a := m.Mem.AllocWords(8)
	err := m.RunAll(func(th *Thread) {
		cancelWorkload(th, a, 10_000, func(i int) {
			if th.ID == 0 && i == 5 {
				cancel() // pull the plug from inside the workload
			}
		})
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// The machine stopped at a boundary, not mid-operation: its clocks
	// and ground truth stay consistent and readable.
	if m.Elapsed() == 0 || m.TotalCycles() == 0 {
		t.Fatalf("machine state unreadable after cancel: elapsed=%d total=%d", m.Elapsed(), m.TotalCycles())
	}
	g := m.GroundTruth()
	if len(g.PerThreadCommits) != 4 {
		t.Fatalf("ground truth truncated: %+v", g)
	}
}

func TestRunDeadlineCancels(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	m := New(Config{Threads: 2, Seed: 3, StartSkew: 64, Context: ctx})
	a := m.Mem.AllocWords(8)
	err := m.RunAll(func(th *Thread) { cancelWorkload(th, a, 10_000_000, nil) })
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}

func TestRunCompletionWinsOverLateCancel(t *testing.T) {
	// A context that is never canceled must not perturb the run: the
	// result is bit-identical to a context-free run.
	ctx, cancel := context.WithCancel(context.Background())
	run := func(c context.Context) (uint64, uint64) {
		m := New(Config{Threads: 4, Seed: 42, StartSkew: 512, Context: c})
		a := m.Mem.AllocWords(8)
		if err := m.RunAll(func(th *Thread) { cancelWorkload(th, a, 200, nil) }); err != nil {
			t.Fatal(err)
		}
		return m.Elapsed(), m.TotalCycles()
	}
	e1, t1 := run(nil)
	e2, t2 := run(ctx)
	cancel() // after completion: no effect, no panic, watcher exits
	if e1 != e2 || t1 != t2 {
		t.Fatalf("context plumbing perturbed the run: (%d,%d) vs (%d,%d)", e1, t1, e2, t2)
	}
}
