package machine

// Scheduler watchdog: a machine must never hang. A thread that blocks
// in workload code without yielding (deadlock) or spins forever
// (livelock) is detected and reported with a per-thread diagnostic
// dump instead.

import (
	"strings"
	"testing"
	"time"

	"txsampler/internal/mem"
)

func TestWatchdogDetectsBlockedThread(t *testing.T) {
	m := New(Config{Threads: 2, Watchdog: 100 * time.Millisecond})
	block := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- m.Run(
			func(th *Thread) {
				for i := 0; i < 1000; i++ {
					th.Compute(1)
				}
			},
			func(th *Thread) {
				th.Compute(1)
				<-block // deadlock: never yields again
			},
		)
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run returned nil for a deadlocked workload")
		}
		for _, want := range []string{"watchdog", "did not yield", "per-thread state", "thread  1"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error missing %q:\n%s", want, err)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("watchdog never fired; scheduler hung")
	}
	close(block)
}

func TestWatchdogDetectsLockDeadlock(t *testing.T) {
	// Two threads deadlock on simulated spin locks (lock-order
	// inversion): both keep yielding, so only the cycle budget can
	// catch it.
	m := New(Config{Threads: 2, MaxCycles: 200_000})
	a := m.Mem.AllocLines(1)
	b := m.Mem.AllocLines(1)
	lock := func(th *Thread, addr mem.Addr) {
		for !th.AtomicCAS(addr, 0, 1) {
			th.Compute(2)
		}
	}
	body := func(first, second mem.Addr) func(*Thread) {
		return func(th *Thread) {
			lock(th, first)
			th.Compute(50)
			lock(th, second) // never acquired: the other thread holds it
			th.Store(second, 0)
			th.Store(first, 0)
		}
	}
	err := m.Run(body(a, b), body(b, a))
	if err == nil {
		t.Fatal("Run returned nil for livelocked workload")
	}
	if !strings.Contains(err.Error(), "MaxCycles") || !strings.Contains(err.Error(), "per-thread state") {
		t.Fatalf("error missing livelock diagnostics:\n%s", err)
	}
}

func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	// A short watchdog must not fire while threads make progress.
	m := New(Config{Threads: 4, Watchdog: 250 * time.Millisecond, MaxCycles: 50_000_000})
	if err := m.RunAll(func(th *Thread) {
		for i := 0; i < 5000; i++ {
			th.Compute(3)
		}
	}); err != nil {
		t.Fatalf("healthy run failed: %v", err)
	}
}
