package machine

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"txsampler/internal/faults"
	"txsampler/internal/htm"
	"txsampler/internal/lbr"
	"txsampler/internal/mem"
	"txsampler/internal/pmu"
	"txsampler/internal/telemetry"
)

// txAbortSentinel is the private panic value used to unwind a thread's
// Go-level execution back to Attempt when its transaction aborts, the
// simulated analogue of the hardware jump to the XBEGIN fallback
// target. It never escapes the machine API: Attempt recovers it.
type txAbortSentinel struct{}

// AbortInfo describes one completed transaction abort, surfaced to the
// RTM runtime library for its retry decision.
type AbortInfo struct {
	Cause        htm.Cause
	CapKind      htm.CapacityKind
	Weight       uint64 // cycles wasted in the aborted attempt
	ConflictLine mem.Addr
	AbortedBy    int  // aborting thread, or -1
	AbortedByTx  bool // conflicting access was itself transactional
}

type frame struct {
	fn   string
	site string
}

// Thread is one simulated hardware thread (pinned to its own core).
// Workload bodies receive a Thread and perform all computation and
// memory access through its operation methods; each operation advances
// the thread's cycle clock and is a scheduling point.
type Thread struct {
	m  *Machine
	ID int

	clock    uint64
	stack    []frame
	lbrBuf   *lbr.Buffer
	counters pmu.Counters
	rng      *rand.Rand
	inj      *faults.Injector // nil unless Config.Faults is enabled

	// Transaction state.
	tx        *htm.Tx
	txNest    int    // flattened nesting depth (TSX nests by flattening)
	txStack   int    // stack depth snapshot at outermost XBEGIN
	txSite    string // top-frame site snapshot at XBEGIN
	txState   uint32 // state word snapshot at XBEGIN
	txBeginIP lbr.IP // abort branch target
	lastAbort AbortInfo

	// State is the RTM runtime library's thread-private state word
	// (paper §3.2). The rtm package maintains it; the profiler reads
	// it from samples. It is software state, not simulated memory.
	State uint32

	// Software-TM interposition (see SoftTx). soft receives
	// non-transactional memory accesses while installed; inSoftHook
	// suppresses nested delivery while a hook runs.
	soft       SoftTx
	inSoftHook bool

	// Exact instrumentation (ground truth for §7.2 validation).
	commits uint64
	aborts  [8]uint64 // indexed by htm.Cause

	// Run-quantum scheduling state. cond waits on the machine
	// scheduler's mutex; granted is the baton. The horizon is the
	// smallest (clock, ID) among the other live threads, frozen at
	// grant time: while this thread stays below it, the per-op
	// scheduler would re-select this thread anyway, so operations run
	// inline without a rendezvous.
	cond       *sync.Cond
	granted    bool
	hasHorizon bool
	hClock     uint64
	hID        int
	sinceYield uint64 // operations since the last rendezvous
	opCount    uint64 // operations completed (diagnostics)
	quantum    uint64 // rendezvous at least every quantum operations
	maxCycles  uint64 // cached Config.MaxCycles

	// Sharded-scheduler state (see sched_sharded.go). pub is this
	// thread's published-clock slot; lastPub mirrors the last value
	// stored there (always the pre-operation clock of whatever runs
	// next). gated caches that the gate condition was proven for
	// lastPub; (hasG, gClock, gID) cache the minimum other published
	// (clock, ID) seen by the last scan — a monotone lower bound.
	sharded bool
	pub     *atomic.Uint64
	lastPub uint64
	gated   bool
	hasG    bool
	gClock  uint64
	gID     int

	// Telemetry state: the clock at the last baton grant (run-slice
	// start) and exact delivery counts published post-run.
	sliceStart       uint64
	interrupts       uint64 // PMU interrupts taken
	samplesDelivered uint64 // samples handed to the handler

	// Scratch reused across sample deliveries so the delivery hot path
	// allocates nothing. The Sample handed to the handler (and every
	// slice it carries) is valid only for the duration of HandleSample;
	// handlers that retain samples must Clone them.
	sampleScratch Sample
	lbrScratch    []lbr.Entry
	truthScratch  []lbr.IP
	stackScratch  []lbr.IP

	// evBatch buffers this thread's trace events between flushes so
	// the tracer's ring mutex is taken once per batch, not per event.
	// Nil when tracing is disabled.
	evBatch []telemetry.Event
}

func newThread(m *Machine, id int) *Thread {
	t := &Thread{
		m:         m,
		ID:        id,
		lbrBuf:    lbr.New(m.cfg.LBRDepth),
		rng:       rand.New(rand.NewSource(m.cfg.Seed*1_000_003 + int64(id))),
		stack:     append(make([]frame, 0, 64), frame{fn: "thread_root"}),
		cond:      sync.NewCond(&m.sched.mu),
		quantum:   uint64(m.cfg.Quantum),
		maxCycles: m.cfg.MaxCycles,
	}
	t.counters.SetPeriods(m.cfg.Periods)
	if m.sched.sharded {
		t.sharded = true
		t.pub = &m.sched.clocks[id].v
	}
	if m.cfg.Trace != nil {
		t.evBatch = make([]telemetry.Event, 0, traceBatchSize)
	}
	t.inj = faults.NewInjector(m.cfg.Faults, uint64(m.cfg.Seed)*64+uint64(id)+1)
	if m.cfg.StartSkew > 0 {
		// Sampling-period jitter accompanies start skew: both break
		// the lock-step artifacts a fully deterministic machine
		// manufactures (real PMU profilers randomize periods too).
		t.counters.EnableJitter(uint64(m.cfg.Seed)*0x9e3779b9 + uint64(id) + 1)
	}
	if m.cfg.StartSkew > 0 {
		// Stagger thread start times as real thread creation does;
		// with a perfectly deterministic scheduler, identical bodies
		// would otherwise run in lockstep and manufacture thundering
		// herds no real machine exhibits.
		t.clock = uint64(t.rng.Int63n(int64(m.cfg.StartSkew)))
	}
	return t
}

// main is the goroutine body driving the workload under the scheduler.
func (t *Thread) main(body func(*Thread)) {
	defer func() { t.finish(recover()) }()
	if t.sharded {
		// No start grant: threads free-run immediately; the gates order
		// every shared-state operation canonically. The initial tick
		// picks up a context that was canceled before Run, so even a
		// workload shorter than one quantum observes the cancellation.
		t.quantumTick()
		body(t)
		return
	}
	s := t.m.sched
	s.mu.Lock()
	for !t.granted {
		t.cond.Wait()
	}
	t.granted = false
	s.mu.Unlock()
	body(t)
}

// finish runs when the workload body returns or panics: it records the
// final status, removes the thread from the live set, and either
// reports the terminal result (panic, or all threads done) or hands
// the baton to the next runnable thread.
func (t *Thread) finish(panicked any) {
	if t.sharded {
		t.finishSharded(panicked)
		return
	}
	s := t.m.sched
	s.mu.Lock()
	defer s.mu.Unlock()
	st := statusOf(t)
	st.ops = t.opCount
	st.done = true
	s.status[t.ID] = st
	s.progress.Add(1)
	if t.m.cfg.Trace != nil {
		t.emitRunSlice()
		t.flushTrace()
	}
	for i, c := range s.live {
		if c == t {
			s.live = append(s.live[:i], s.live[i+1:]...)
			break
		}
	}
	if s.stopped {
		return
	}
	if panicked != nil {
		// Fail fast: the dead thread may hold a spin lock other
		// threads wait on forever. Remaining thread goroutines stay
		// parked and are collected with the machine. Wrap error panic
		// values so callers can errors.Is/As typed workload failures.
		s.reportLocked(panicErr(t.ID, panicked))
		return
	}
	next, err := t.m.pickNextLocked()
	if err != nil {
		s.reportLocked(err)
		return
	}
	if next == nil {
		s.reportLocked(nil) // all threads completed: completion wins over a racing cancel
		return
	}
	s.checkCancelLocked()
	if s.stopped {
		return
	}
	t.m.grantLocked(next)
}

// rendezvous is the scheduling point: record status, pick the next
// runnable thread by (clock, ID), and either continue (this thread is
// still the minimum) or hand the baton over and wait to be granted.
func (t *Thread) rendezvous() {
	s := t.m.sched
	s.mu.Lock()
	st := statusOf(t)
	st.ops = t.opCount
	s.status[t.ID] = st
	s.progress.Add(1)
	s.checkCancelLocked()
	if s.stopped {
		t.parkLocked()
	}
	next, err := t.m.pickNextLocked()
	if err != nil {
		s.reportLocked(err)
		t.parkLocked()
	}
	if next == t {
		// The baton stays here: the run slice continues, so no trace
		// event — slice boundaries stay quantum-invariant.
		t.m.setHorizonLocked(t)
		t.sinceYield = 0
		s.running = t.ID
		s.mu.Unlock()
		return
	}
	if t.m.cfg.Trace != nil {
		t.emitRunSlice()
		t.flushTrace() // hand off with an empty batch: ring stays near-ordered
	}
	t.m.grantLocked(next)
	for !t.granted {
		t.cond.Wait()
	}
	t.granted = false
	s.mu.Unlock()
}

// parkLocked blocks the calling thread goroutine forever (the machine
// has failed; the goroutine is abandoned exactly as the channel-based
// scheduler abandoned threads parked at a rendezvous). Never returns.
func (t *Thread) parkLocked() {
	t.flushTrace() // retire buffered trace events before blocking forever
	for {
		t.cond.Wait()
	}
}

// mayContinue reports whether the per-op scheduler would re-select
// this thread for its next operation: its clock is still below the
// horizon (the smallest other live thread's clock at grant time,
// which cannot change while this thread runs), or ties it with a
// smaller ID.
func (t *Thread) mayContinue() bool {
	return !t.hasHorizon || t.clock < t.hClock || (t.clock == t.hClock && t.ID < t.hID)
}

// Clock returns the thread's cycle clock.
func (t *Thread) Clock() uint64 { return t.clock }

// Rand returns the thread's deterministic PRNG.
func (t *Thread) Rand() *rand.Rand { return t.rng }

// Machine returns the owning machine.
func (t *Thread) Machine() *Machine { return t.m }

// Counters exposes the thread's PMU counters (read-only use).
func (t *Thread) Counters() *pmu.Counters { return &t.counters }

// InTx reports whether a hardware transaction is active.
func (t *Thread) InTx() bool { return t.tx != nil }

// LastAbort returns the record of the most recent abort; valid inside
// the abort handling path of Attempt.
func (t *Thread) LastAbort() AbortInfo { return t.lastAbort }

// Commits and Aborts expose the exact ground-truth instrumentation.
func (t *Thread) Commits() uint64 { return t.commits }

// Aborts returns the exact abort count for one cause.
func (t *Thread) Aborts(c htm.Cause) uint64 { return t.aborts[c] }

// CallStack returns a copy of the architectural call stack, root
// first — what a call-stack unwinder observes at this instant.
func (t *Thread) CallStack() []lbr.IP { return t.stackIPs() }

func (t *Thread) curIP() lbr.IP {
	f := t.stack[len(t.stack)-1]
	return lbr.IP{Fn: f.fn, Site: f.site}
}

func (t *Thread) stackIPs() []lbr.IP {
	out := make([]lbr.IP, len(t.stack))
	for i, f := range t.stack {
		out[i] = lbr.IP{Fn: f.fn, Site: f.site}
	}
	return out
}

// stackIPsInto is stackIPs reusing dst's backing array.
func (t *Thread) stackIPsInto(dst []lbr.IP) []lbr.IP {
	dst = dst[:0]
	for _, f := range t.stack {
		dst = append(dst, lbr.IP{Fn: f.fn, Site: f.site})
	}
	return dst
}

// opMeta carries PMU metadata for one operation.
type opMeta struct {
	ev      pmu.Event
	n       uint64
	hasEv   bool
	addr    mem.Addr
	isWrite bool
	hasAddr bool
}

// startOp begins one operation: deliver any pending asynchronous abort
// and run the fault injector's per-operation hooks. The operation's
// effect then executes inline in the caller, followed by endOp.
//
// Under the sharded scheduler, any operation inside a transaction
// gates first — other threads' canonical-order operations may doom
// this transaction, so even thread-private work must observe shared
// state at its canonical position.
func (t *Thread) startOp() {
	if t.sharded && t.tx != nil {
		t.gate()
	}
	if t.tx != nil && t.tx.Doomed {
		t.abortNow() // asynchronous abort arrived between operations
	}
	if t.inj != nil {
		t.inj.Tick()
		if n := t.inj.Stall(); n > 0 {
			// Interference stall: simulated time passes but no
			// instructions retire, so the PMU counters do not advance.
			t.clock += n
		}
		if t.tx != nil && t.inj.SpuriousAbort() {
			// Transient microarchitectural abort: the status word
			// reports nothing (no _XABORT_* bit set), as real TSX does
			// for TLB shootdowns, uncore interference, and similar.
			t.m.HTM.Doom(t.tx, htm.Spurious, -1, 0)
			t.abortNow()
		}
	}
}

// startShared begins an operation whose effect touches shared machine
// state (memory, caches, the HTM engine) even outside a transaction.
// Under the sharded scheduler it first gates at the thread's canonical
// position; under the serial scheduler the baton already serializes.
func (t *Thread) startShared() {
	if t.sharded {
		t.gate()
	}
	t.startOp()
}

// endOp completes one operation: unwind if the effect doomed the
// transaction, advance the clock and PMU counters, deliver counter
// overflow interrupts, and reach the scheduler's slow path — a serial
// rendezvous when the per-op schedule would select another thread or
// the quantum expires, or (sharded) a publish of the advanced clock
// plus per-quantum bookkeeping.
func (t *Thread) endOp(meta opMeta, cost uint64) {
	if t.tx != nil && t.tx.Doomed {
		t.abortNow() // the effect doomed us (capacity, sync, explicit)
	}
	t.clock += cost
	var over [2]pmu.Event
	n := 0
	if t.counters.Add(pmu.Cycles, cost) {
		over[n] = pmu.Cycles
		n++
	}
	if meta.hasEv && t.counters.Add(meta.ev, meta.n) {
		over[n] = meta.ev
		n++
	}
	if n > 0 && t.m.handler != nil {
		if t.sharded {
			// Sample delivery mutates shared collector state. Gate at
			// the operation's canonical position — lastPub still holds
			// the pre-operation clock — before invoking the handler.
			t.gate()
		}
		t.deliverInterrupt(over[:n], meta)
	}
	t.opCount++
	t.sinceYield++
	if t.sharded {
		t.publish()
		if t.maxCycles > 0 && t.clock > t.maxCycles {
			t.livelockSharded()
		}
		if t.sinceYield >= t.quantum {
			t.quantumTick()
		}
		return
	}
	if t.sinceYield >= t.quantum || !t.mayContinue() ||
		(t.maxCycles > 0 && t.clock > t.maxCycles) {
		t.rendezvous()
	}
}

// rollback restores the architectural state to the XBEGIN point after
// the engine doomed t.tx, records the LBR abort branch, charges the
// hardware abort penalty, and updates abort instrumentation. It
// reports whether the TxAbort PMU counter overflowed.
func (t *Thread) rollback() (abortOverflow bool) {
	tx := t.tx
	cause := tx.AbortCause
	weight := t.clock - tx.StartCycle + t.m.cfg.Costs.TxAbort
	t.lbrBuf.Record(lbr.Entry{
		Kind: lbr.KindAbort, From: t.curIP(), To: t.txBeginIP, Abort: true, InTSX: true,
	})
	t.stack = t.stack[:t.txStack]
	t.stack[len(t.stack)-1].site = t.txSite
	t.State = t.txState
	t.txNest = 0
	t.clock += t.m.cfg.Costs.TxAbort
	t.counters.Add(pmu.Cycles, t.m.cfg.Costs.TxAbort)
	t.aborts[cause]++
	t.TraceEvent(telemetry.Event{
		Kind: telemetry.KindTxAbort, TS: tx.StartCycle, Dur: t.clock - tx.StartCycle,
		TID: int32(t.ID), Arg: uint64(cause), Name: abortEventNames[cause],
	})
	abortOverflow = t.counters.Add(pmu.TxAbort, 1)
	t.lastAbort = AbortInfo{
		Cause:        cause,
		CapKind:      tx.CapKind,
		Weight:       weight,
		ConflictLine: tx.ConflictLine,
		AbortedBy:    tx.AbortedBy,
		AbortedByTx:  tx.AbortedByTx,
	}
	t.tx = nil
	return abortOverflow
}

// abortNow completes an abort whose cause is already recorded in the
// doomed transaction: roll back, deliver an RTM_RETIRED:ABORTED sample
// if that counter overflowed, and unwind to Attempt.
func (t *Thread) abortNow() {
	t.truthScratch = t.stackIPsInto(t.truthScratch)
	truth := t.truthScratch
	from := t.curIP()
	overflow := t.rollback()
	if overflow && t.m.handler != nil {
		t.interrupts++
		events := [1]pmu.Event{pmu.TxAbort}
		t.deliverSamples(events[:], from, truth, true, opMeta{})
	}
	// Deliberately no publish here: the unwind skips endOp, so the
	// first operation after the abort runs while this thread still
	// holds the gate at the aborted operation's canonical position —
	// exactly matching the serial scheduler, where the unwind skips
	// the rendezvous check and the post-abort operation's effect
	// executes before the baton can move. The rider's own endOp
	// publish releases the gate.
	panic(txAbortSentinel{})
}

// deliverInterrupt handles PMU counter overflow at the end of an
// operation. If a transaction is running, the interrupt aborts it
// first (the handler then observes the rolled-back state and an LBR
// whose top entry has the abort bit set); otherwise the LBR records a
// plain interrupt branch.
func (t *Thread) deliverInterrupt(events []pmu.Event, meta opMeta) {
	t.interrupts++
	t.truthScratch = t.stackIPsInto(t.truthScratch)
	truth := t.truthScratch
	ip := t.curIP()
	wasInTx := t.tx != nil
	var evBuf [3]pmu.Event // at most two overflow events plus TxAbort
	if wasInTx {
		t.m.HTM.Doom(t.tx, htm.Interrupt, -1, 0)
		// The abort retires before the PMI handler freezes the
		// counters; if it overflows the TxAbort counter, a second
		// interrupt is pending and delivers right after this one.
		if t.rollback() {
			n := copy(evBuf[:], events)
			evBuf[n] = pmu.TxAbort
			events = evBuf[:n+1]
		}
	} else {
		t.lbrBuf.Record(lbr.Entry{Kind: lbr.KindInterrupt, From: ip, To: ip})
	}
	t.deliverSamples(events, ip, truth, wasInTx, meta)
	if wasInTx {
		// No publish: the post-abort operation rides along under the
		// held gate, as in the serial scheduler; see abortNow.
		panic(txAbortSentinel{})
	}
}

// deliverSamples builds and dispatches one Sample per overflowed
// event, freezing the LBR and counters for the duration and charging
// the handler cost, exactly once per delivered sample.
func (t *Thread) deliverSamples(events []pmu.Event, ip lbr.IP, truth []lbr.IP, wasInTx bool, meta opMeta) {
	t.lbrBuf.Freeze()
	t.counters.Freeze()
	t.lbrScratch = t.lbrBuf.SnapshotInto(t.lbrScratch)
	snapshot := t.lbrScratch
	if t.inj != nil {
		snapshot = t.inj.CorruptLBR(snapshot)
	}
	// The unwound stack is identical for every sample of one delivery;
	// outside a transaction it is also identical to the ground-truth
	// stack captured before delivery, so the backing array is shared.
	stack := truth
	if wasInTx {
		t.stackScratch = t.stackIPsInto(t.stackScratch)
		stack = t.stackScratch // rolled back: differs from truth
	}
	for _, ev := range events {
		if t.inj != nil && t.inj.DropSample(t.clock) {
			// The PMI was lost or coalesced away: the machine-level
			// perturbation already happened (an in-flight transaction
			// was aborted by the interrupt), but the profiler never
			// sees the sample and pays no handler cost.
			continue
		}
		now := t.clock
		if t.inj != nil {
			now = t.inj.SkewTime(now)
		}
		// One Sample struct per thread, reused across deliveries; the
		// handler contract (see Sample) lets retaining handlers Clone.
		s := &t.sampleScratch
		*s = Sample{
			Event:      ev,
			TID:        t.ID,
			Time:       now,
			IP:         ip,
			LBR:        snapshot,
			State:      t.State,
			Stack:      stack,
			TruthStack: truth,
			TruthInTx:  wasInTx,
		}
		if meta.hasAddr && (ev == pmu.Loads || ev == pmu.Stores) {
			s.Addr, s.IsWrite, s.HasAddr = meta.addr, meta.isWrite, true
		}
		if ev == pmu.TxAbort {
			s.Abort = &t.lastAbort
		}
		t.samplesDelivered++
		t.TraceEvent(telemetry.Event{
			Kind: telemetry.KindInterrupt, TS: t.clock, TID: int32(t.ID),
			Arg: uint64(ev), Name: pmiEventNames[ev],
		})
		t.m.handler.HandleSample(s)
		t.clock += t.m.cfg.HandlerCost
	}
	t.counters.Unfreeze()
	t.lbrBuf.Unfreeze()
}

// --- Operations available to workload bodies ---

// Compute burns n cycles of local computation.
func (t *Thread) Compute(n int) {
	if n <= 0 {
		return
	}
	t.startOp()
	t.endOp(opMeta{}, uint64(n)*t.m.cfg.Costs.Compute)
}

// Load reads the word at a, transactionally when a transaction is
// active.
func (t *Thread) Load(a mem.Addr) mem.Word {
	t.startShared()
	var v mem.Word
	var cost uint64
	if t.tx != nil {
		buf, fromBuf := t.m.HTM.Read(t.tx, a)
		if !t.tx.Doomed {
			r := t.m.Caches.Access(t.ID, a, false)
			if fromBuf {
				v = buf
			} else {
				v = t.m.Mem.Load(a)
			}
			cost = uint64(r.Latency) + t.m.cfg.MemPenalty
		}
	} else {
		t.m.HTM.NonTxAccess(t.ID, a, false)
		r := t.m.Caches.Access(t.ID, a, false)
		v = t.m.Mem.Load(a)
		cost = uint64(r.Latency) + t.m.cfg.MemPenalty
	}
	t.endOp(opMeta{ev: pmu.Loads, n: 1, hasEv: true, addr: a, hasAddr: true}, cost)
	t.softLoad(a, v)
	return v
}

// Store writes v to the word at a, transactionally when a transaction
// is active (the store is buffered until commit).
func (t *Thread) Store(a mem.Addr, v mem.Word) {
	t.softStore(a)
	t.startShared()
	var cost uint64
	if t.tx != nil {
		t.m.HTM.Write(t.tx, a, v)
		if !t.tx.Doomed {
			r := t.m.Caches.Access(t.ID, a, true)
			cost = uint64(r.Latency) + t.m.cfg.MemPenalty
		}
	} else {
		t.m.HTM.NonTxAccess(t.ID, a, true)
		r := t.m.Caches.Access(t.ID, a, true)
		t.m.Mem.Store(a, v)
		cost = uint64(r.Latency) + t.m.cfg.MemPenalty
		if t.m.pmem != nil {
			cost += t.m.pmem.OnStore(t.ID, a, v)
		}
	}
	t.endOp(opMeta{ev: pmu.Stores, n: 1, hasEv: true, addr: a, isWrite: true, hasAddr: true}, cost)
}

// Add loads, adds d, and stores the word at a (two operations, as the
// compiled code would issue).
func (t *Thread) Add(a mem.Addr, d int64) mem.Word {
	v := t.Load(a) + mem.Word(d)
	t.Store(a, v)
	return v
}

// AtomicCAS performs a compare-and-swap on the word at a as a single
// locked operation. Inside a transaction it behaves like a normal
// read-modify-write on the write set.
func (t *Thread) AtomicCAS(a mem.Addr, old, new mem.Word) bool {
	t.softStore(a)
	t.startShared()
	var ok bool
	var cost uint64
	if t.tx != nil {
		cur, fromBuf := t.m.HTM.Read(t.tx, a)
		if !t.tx.Doomed {
			if !fromBuf {
				cur = t.m.Mem.Load(a)
			}
			if cur == old {
				t.m.HTM.Write(t.tx, a, new)
				ok = !t.tx.Doomed
			}
			r := t.m.Caches.Access(t.ID, a, true)
			cost = uint64(r.Latency) + t.m.cfg.Costs.Atomic
		}
	} else {
		t.m.HTM.NonTxAccess(t.ID, a, true)
		r := t.m.Caches.Access(t.ID, a, true)
		if t.m.Mem.Load(a) == old {
			t.m.Mem.Store(a, new)
			ok = true
			if t.m.pmem != nil {
				cost += t.m.pmem.OnStore(t.ID, a, new)
			}
		}
		cost += uint64(r.Latency) + t.m.cfg.Costs.Atomic
	}
	t.endOp(opMeta{ev: pmu.Stores, n: 1, hasEv: true, addr: a, isWrite: true, hasAddr: true}, cost)
	return ok
}

// AtomicAdd atomically adds d to the word at a and returns the new
// value.
func (t *Thread) AtomicAdd(a mem.Addr, d int64) mem.Word {
	t.softStore(a)
	t.startShared()
	var v mem.Word
	var cost uint64
	if t.tx != nil {
		cur, fromBuf := t.m.HTM.Read(t.tx, a)
		if !t.tx.Doomed {
			if !fromBuf {
				cur = t.m.Mem.Load(a)
			}
			v = cur + mem.Word(d)
			t.m.HTM.Write(t.tx, a, v)
			r := t.m.Caches.Access(t.ID, a, true)
			cost = uint64(r.Latency) + t.m.cfg.Costs.Atomic
		}
	} else {
		t.m.HTM.NonTxAccess(t.ID, a, true)
		r := t.m.Caches.Access(t.ID, a, true)
		v = t.m.Mem.Load(a) + mem.Word(d)
		t.m.Mem.Store(a, v)
		cost = uint64(r.Latency) + t.m.cfg.Costs.Atomic
		if t.m.pmem != nil {
			cost += t.m.pmem.OnStore(t.ID, a, v)
		}
	}
	t.endOp(opMeta{ev: pmu.Stores, n: 1, hasEv: true, addr: a, isWrite: true, hasAddr: true}, cost)
	return v
}

// Syscall executes a system call — an HTM-unfriendly instruction that
// synchronously aborts a running transaction (paper §1).
func (t *Thread) Syscall(kind string) {
	t.startOp()
	var cost uint64
	if t.tx != nil {
		t.m.HTM.Doom(t.tx, htm.Sync, -1, 0)
	} else {
		cost = t.m.cfg.Costs.Syscall
	}
	t.endOp(opMeta{}, cost)
}

// PageFault touches a cold page: an HTM-unfriendly event that
// synchronously aborts a running transaction, like Syscall but with
// the cost of a minor fault outside transactions (paper §1 lists page
// faults among the synchronous abort causes; §5 suggests prefetching
// as the fix).
func (t *Thread) PageFault() {
	t.startOp()
	var cost uint64
	if t.tx != nil {
		t.m.HTM.Doom(t.tx, htm.Sync, -1, 0)
	} else {
		cost = t.m.cfg.Costs.Syscall * 3 // fault handling round trip
	}
	t.endOp(opMeta{}, cost)
}

// Call pushes a stack frame for fn and records the branch in the LBR.
func (t *Thread) Call(fn string) {
	t.startOp()
	t.lbrBuf.Record(lbr.Entry{
		Kind: lbr.KindCall, From: t.curIP(), To: lbr.IP{Fn: fn}, InTSX: t.tx != nil,
	})
	t.stack = append(t.stack, frame{fn: fn})
	t.endOp(opMeta{}, t.m.cfg.Costs.Call)
}

// Return pops the current frame and records the branch in the LBR.
func (t *Thread) Return() {
	t.startOp()
	if len(t.stack) <= 1 {
		panic("machine: Return with empty call stack")
	}
	from := t.curIP()
	t.stack = t.stack[:len(t.stack)-1]
	t.lbrBuf.Record(lbr.Entry{
		Kind: lbr.KindReturn, From: from, To: t.curIP(), InTSX: t.tx != nil,
	})
	t.endOp(opMeta{}, t.m.cfg.Costs.Return)
}

// Func runs f within a stack frame named fn. The matching Return is
// intentionally skipped when f unwinds on a transaction abort: the
// rollback restores the call stack, as hardware does.
func (t *Thread) Func(fn string, f func()) {
	t.Call(fn)
	f()
	t.Return()
}

// At annotates the current frame with a source-site label used for
// sample attribution. It is free: no cycles, no scheduling point.
func (t *Thread) At(site string) { t.stack[len(t.stack)-1].site = site }

// --- Persistent-memory operations ---

// PmemSectionBegin opens the thread's durable section; the rtm runtime
// calls it at critical-section entry. Free (no cycles, no scheduling
// point) and a no-op when the pmem tier is disabled.
func (t *Thread) PmemSectionBegin() {
	if t.m.pmem != nil {
		t.m.pmem.Begin(t.ID)
	}
}

// PmemPending reports whether the current durable section stored to
// tracked lines and so must run the persist epilogue.
func (t *Thread) PmemPending() bool {
	return t.m.pmem != nil && t.m.pmem.Pending(t.ID)
}

// pmemOp is one cost-bearing persistence operation (a flush, fence, or
// commit-record write). It runs outside any transaction, so the only
// observable effects are cycles — the persistence stall the profiler
// samples — and PMU interrupts.
func (t *Thread) pmemOp(cost uint64) {
	t.startOp()
	t.endOp(opMeta{}, cost)
}

// pmemCrash injects a whole-machine crash and its recovery at the
// thread's canonical position: the domain tears the undo log for the
// crash class, replays it against the persist image, and reloads the
// volatile copies of the transaction's lines (the reboot).
func (t *Thread) pmemCrash(class string) {
	t.Exclusive(func() {
		t.m.pmem.Crash(t.ID, class, t.m.Mem)
	})
}

// PmemPersist runs the durable-commit epilogue for the current
// section: flush every logged line (address order), fence, then write
// and persist the commit record. The rtm runtime calls it, inside a
// pmem_persist frame with the InFlush state bit set, after the
// critical section's memory effects committed. It returns whether an
// injected crash fired and whether the transaction is durably
// committed — (true, false) means the caller must re-execute the
// section, as the post-reboot application would.
func (t *Thread) PmemPersist() (crashed, committed bool) {
	d := t.m.pmem
	var class string
	t.Exclusive(func() { class = d.Arm(t.ID) })
	if class != "" && class != faults.PmemCrashAfterCommit {
		// The crash lands before the commit record is durable: either
		// before any data flush (log complete) or during logging (log
		// torn). Recovery rolls the transaction back.
		t.pmemCrash(class)
		return true, false
	}
	costs := d.Costs()
	for range d.DirtyLines(t.ID) {
		t.pmemOp(costs.FlushCost) // CLWB one durable line
	}
	t.pmemOp(costs.FenceCost) // drain the write-pending queue
	t.startOp()
	t.m.pmem.Commit(t.ID)
	t.endOp(opMeta{}, costs.CommitCost)
	if class == faults.PmemCrashAfterCommit {
		t.pmemCrash(class)
		return true, true
	}
	t.Exclusive(func() { d.Complete(t.ID) })
	return false, true
}

// --- Transactions ---

// MaxTxNest is the architectural nesting limit; exceeding it aborts
// the (flattened) transaction, as TSX's MAX_RTM_NEST_COUNT does.
const MaxTxNest = 7

// TxBegin starts a hardware transaction (XBEGIN). Nested begins
// flatten into the outermost transaction, as on TSX; exceeding
// MaxTxNest aborts. Most callers want Attempt or the rtm package
// instead.
func (t *Thread) TxBegin() {
	t.startShared()
	var cost uint64
	if t.tx != nil {
		t.txNest++
		if t.txNest >= MaxTxNest {
			t.m.HTM.Doom(t.tx, htm.Explicit, -1, 0)
		}
		cost = t.m.cfg.Costs.TxBegin / 4 // nested XBEGIN is cheap
	} else {
		t.txNest = 0
		t.tx = t.m.HTM.Begin(t.ID, t.clock)
		t.txStack = len(t.stack)
		t.txSite = t.stack[len(t.stack)-1].site
		t.txState = t.State
		t.txBeginIP = t.curIP()
		cost = t.m.cfg.Costs.TxBegin
	}
	t.endOp(opMeta{}, cost)
}

// TxCommit commits the running transaction (XEND), applying its
// buffered stores to memory, or unwinds if it was doomed at the commit
// point. A nested commit only decrements the flattened nesting depth.
func (t *Thread) TxCommit() {
	// startOp first: the gate must be held (sharded) before reading
	// t.tx.Doomed, which a concurrent thread's conflicting access may
	// set from its own gated operation.
	t.startOp()
	if t.tx != nil && !t.tx.Doomed && t.txNest > 0 {
		t.txNest--
		t.endOp(opMeta{}, t.m.cfg.Costs.TxEnd/4)
		return
	}
	if t.tx == nil {
		panic("machine: TxCommit outside a transaction")
	}
	var cost uint64
	if stores, ok := t.m.HTM.Commit(t.tx); ok {
		if d := t.m.pmem; d != nil {
			// The write-through hook appends undo records, so the buffered
			// stores must apply in a deterministic (address) order for the
			// log bytes to be reproducible. The volatile-only machine keeps
			// the original unordered apply: map order is invisible there.
			addrs := make([]mem.Addr, 0, len(stores))
			for a := range stores {
				addrs = append(addrs, a)
			}
			sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
			for _, a := range addrs {
				t.m.Mem.Store(a, stores[a])
				cost += d.OnStore(t.ID, a, stores[a])
			}
		} else {
			for a, v := range stores {
				t.m.Mem.Store(a, v)
			}
		}
		t.commits++
		t.TraceEvent(telemetry.Event{
			Kind: telemetry.KindTx, TS: t.tx.StartCycle,
			Dur: t.clock - t.tx.StartCycle, TID: int32(t.ID),
		})
		t.tx = nil
		cost += t.m.cfg.Costs.TxEnd
	}
	// Doomed: cost stays 0 and the endOp doom check unwinds.
	t.endOp(opMeta{ev: pmu.TxCommit, n: 1, hasEv: true}, cost)
}

// TxAbort explicitly aborts the running transaction (XABORT).
func (t *Thread) TxAbort() {
	t.startOp()
	if t.tx == nil {
		panic("machine: TxAbort outside a transaction")
	}
	t.m.HTM.Doom(t.tx, htm.Explicit, -1, 0)
	t.endOp(opMeta{}, 0)
}

// Attempt executes body as one hardware transaction attempt. It
// returns nil if the transaction committed, or the abort record. It is
// the simulated equivalent of the XBEGIN status-check idiom:
//
//	if (_xbegin() == _XBEGIN_STARTED) { body; _xend(); }
//	else { /* inspect abort status */ }
//
// Nested Attempts flatten into the outermost transaction: an abort
// anywhere unwinds the whole flattened transaction to the outermost
// Attempt, exactly as TSX rolls back to the outermost XBEGIN.
func (t *Thread) Attempt(body func()) (abort *AbortInfo) {
	outermost := t.tx == nil
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(txAbortSentinel); !ok {
				panic(r)
			}
			if !outermost {
				panic(r) // keep unwinding to the outermost XBEGIN
			}
			info := t.lastAbort
			abort = &info
		}
	}()
	t.TxBegin()
	body()
	t.TxCommit()
	return nil
}
