package machine

import (
	"testing"

	"txsampler/internal/htm"
	"txsampler/internal/mem"
	"txsampler/internal/pmu"
)

func TestStartSkewDeterministicAndBounded(t *testing.T) {
	mk := func() []uint64 {
		m := New(Config{Threads: 8, Seed: 3, StartSkew: 500})
		out := make([]uint64, 8)
		for i := 0; i < 8; i++ {
			out[i] = m.Thread(i).Clock()
		}
		return out
	}
	a, b := mk(), mk()
	distinct := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("skew not deterministic: %v vs %v", a, b)
		}
		if a[i] >= 500 {
			t.Fatalf("skew %d out of bounds", a[i])
		}
		if a[i] != a[0] {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("all threads got identical skew")
	}
}

func TestNoSkewByDefault(t *testing.T) {
	m := New(Config{Threads: 4, Seed: 3})
	for i := 0; i < 4; i++ {
		if m.Thread(i).Clock() != 0 {
			t.Fatalf("thread %d starts at %d without StartSkew", i, m.Thread(i).Clock())
		}
	}
}

func TestJitteredSamplingStaysDeterministic(t *testing.T) {
	run := func() uint64 {
		var p pmu.Periods
		p[pmu.Cycles] = 300
		m := New(Config{Threads: 4, Seed: 11, Periods: p, StartSkew: 512})
		h := &collectHandler{}
		m.SetHandler(h)
		a := m.Mem.AllocWords(4)
		if err := m.RunAll(func(t *Thread) {
			for i := 0; i < 100; i++ {
				t.Attempt(func() { t.Add(a.Offset(t.ID), 1) })
				t.Compute(20)
			}
		}); err != nil {
			t.Fatal(err)
		}
		return uint64(len(h.samples))*1_000_000 + m.Elapsed()
	}
	if run() != run() {
		t.Fatal("jittered runs with identical seeds differ")
	}
}

func TestAtomicCASInsideTransaction(t *testing.T) {
	m := New(Config{Threads: 1})
	a := m.Mem.AllocWords(1)
	m.Mem.Store(a, 5)
	var okSwap, failSwap bool
	err := m.RunAll(func(t *Thread) {
		ab := t.Attempt(func() {
			okSwap = t.AtomicCAS(a, 5, 9)
			failSwap = t.AtomicCAS(a, 5, 11) // now reads buffered 9
		})
		if ab != nil {
			panic("unexpected abort")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !okSwap || failSwap {
		t.Fatalf("CAS results: %v %v, want true,false", okSwap, failSwap)
	}
	if v := m.Mem.Load(a); v != 9 {
		t.Fatalf("memory = %d, want 9", v)
	}
}

func TestReadCapacityViaLoads(t *testing.T) {
	m := New(Config{Threads: 1, MaxReadLines: 6})
	base := m.Mem.AllocLines(10)
	var info *AbortInfo
	err := m.RunAll(func(t *Thread) {
		info = t.Attempt(func() {
			for i := 0; i < 8; i++ {
				t.Load(base + mem.Addr(i*mem.LineSize))
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if info == nil || info.Cause != htm.Capacity || info.CapKind != htm.CapacityRead {
		t.Fatalf("abort = %+v, want read capacity", info)
	}
}

func TestElapsedIsMaxTotalIsSum(t *testing.T) {
	m := New(Config{Threads: 2})
	err := m.Run(
		func(t *Thread) { t.Compute(100) },
		func(t *Thread) { t.Compute(300) },
	)
	if err != nil {
		t.Fatal(err)
	}
	if m.Elapsed() != 300 {
		t.Fatalf("Elapsed = %d, want 300", m.Elapsed())
	}
	if m.TotalCycles() != 400 {
		t.Fatalf("TotalCycles = %d, want 400", m.TotalCycles())
	}
}

func TestPerThreadGroundTruth(t *testing.T) {
	m := New(Config{Threads: 2})
	a := m.Mem.AllocLines(2)
	err := m.Run(
		func(t *Thread) {
			for i := 0; i < 5; i++ {
				t.Attempt(func() { t.Add(a, 1) })
			}
		},
		func(t *Thread) {
			for i := 0; i < 3; i++ {
				t.Attempt(func() { t.Add(a+mem.LineSize, 1) })
			}
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	g := m.GroundTruth()
	if g.PerThreadCommits[0] != 5 || g.PerThreadCommits[1] != 3 {
		t.Fatalf("per-thread commits = %v", g.PerThreadCommits)
	}
	if g.Commits != 8 {
		t.Fatalf("total commits = %d", g.Commits)
	}
}

func TestCountersTrackTotals(t *testing.T) {
	m := New(Config{Threads: 1})
	a := m.Mem.AllocWords(4)
	err := m.RunAll(func(t *Thread) {
		for i := 0; i < 10; i++ {
			t.Load(a.Offset(i % 4))
		}
		for i := 0; i < 7; i++ {
			t.Store(a.Offset(i%4), 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	c := m.Thread(0).Counters()
	if c.Total(pmu.Loads) != 10 {
		t.Fatalf("loads = %d, want 10", c.Total(pmu.Loads))
	}
	if c.Total(pmu.Stores) != 7 {
		t.Fatalf("stores = %d, want 7", c.Total(pmu.Stores))
	}
	if c.Total(pmu.Cycles) != m.Thread(0).Clock() {
		t.Fatalf("cycles counter %d != clock %d", c.Total(pmu.Cycles), m.Thread(0).Clock())
	}
}

func TestLBRDepthConfigured(t *testing.T) {
	var p pmu.Periods
	p[pmu.Cycles] = 100
	m := New(Config{Threads: 1, LBRDepth: 4, Periods: p})
	h := &collectHandler{}
	m.SetHandler(h)
	err := m.RunAll(func(t *Thread) {
		for i := 0; i < 10; i++ {
			t.Func("a", func() { t.Func("b", func() { t.Compute(30) }) })
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.samples) == 0 {
		t.Fatal("no samples")
	}
	for _, s := range h.samples {
		if len(s.LBR) > 4 {
			t.Fatalf("LBR snapshot has %d entries with depth 4", len(s.LBR))
		}
	}
}

func TestInterruptAbortsAreDistinctCause(t *testing.T) {
	var p pmu.Periods
	p[pmu.Cycles] = 200
	m := New(Config{Threads: 1, Periods: p})
	m.SetHandler(&collectHandler{})
	a := m.Mem.AllocWords(1)
	retried := 0
	err := m.RunAll(func(t *Thread) {
		for i := 0; i < 50; i++ {
			for {
				if ab := t.Attempt(func() {
					t.Compute(100)
					t.Add(a, 1)
				}); ab == nil {
					break
				} else if ab.Cause != htm.Interrupt {
					panic("single-thread abort must be interrupt-induced")
				}
				retried++
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if retried == 0 {
		t.Fatal("dense sampling on a single thread produced no interrupt aborts")
	}
	if v := m.Mem.Load(a); v != 50 {
		t.Fatalf("counter = %d, want 50", v)
	}
}

func TestRunAllZeroThreadsDefaultsToOne(t *testing.T) {
	m := New(Config{})
	ran := false
	if err := m.RunAll(func(t *Thread) { ran = true; t.Compute(1) }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("body did not run")
	}
}

func TestNestedAttemptsFlatten(t *testing.T) {
	m := New(Config{Threads: 1})
	a := m.Mem.AllocWords(2)
	err := m.RunAll(func(th *Thread) {
		ab := th.Attempt(func() {
			th.Store(a, 1)
			inner := th.Attempt(func() { th.Store(a.Offset(1), 2) })
			if inner != nil {
				panic("inner attempt must not report its own abort")
			}
		})
		if ab != nil {
			panic("flattened transaction should commit")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Mem.Load(a) != 1 || m.Mem.Load(a.Offset(1)) != 2 {
		t.Fatal("nested stores lost")
	}
	if g := m.GroundTruth(); g.Commits != 1 {
		t.Fatalf("commits = %d, want 1 (flattening commits once)", g.Commits)
	}
}

func TestNestedAbortUnwindsToOutermost(t *testing.T) {
	m := New(Config{Threads: 1})
	a := m.Mem.AllocWords(1)
	var innerCaught, outerCaught bool
	err := m.RunAll(func(th *Thread) {
		ab := th.Attempt(func() {
			th.Store(a, 7)
			inner := th.Attempt(func() { th.Syscall("x") })
			innerCaught = inner != nil // must stay false: abort passes through
		})
		outerCaught = ab != nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if innerCaught {
		t.Fatal("inner Attempt swallowed a flattened abort")
	}
	if !outerCaught {
		t.Fatal("outer Attempt did not observe the abort")
	}
	if m.Mem.Load(a) != 0 {
		t.Fatal("outer store survived a flattened abort")
	}
}

func TestNestingLimitAborts(t *testing.T) {
	m := New(Config{Threads: 1})
	var cause string
	err := m.RunAll(func(th *Thread) {
		var nest func(d int)
		nest = func(d int) {
			if d >= MaxTxNest+2 {
				th.Compute(1)
				return
			}
			th.Attempt(func() { nest(d + 1) })
		}
		ab := th.Attempt(func() { nest(1) })
		if ab != nil {
			cause = ab.Cause.String()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if cause != "explicit" {
		t.Fatalf("over-nesting cause = %q, want explicit abort", cause)
	}
}

func TestPageFaultAbortsTransaction(t *testing.T) {
	m := New(Config{Threads: 1})
	var info *AbortInfo
	err := m.RunAll(func(th *Thread) {
		info = th.Attempt(func() { th.PageFault() })
		th.PageFault() // outside a tx: just expensive
	})
	if err != nil {
		t.Fatal(err)
	}
	if info == nil || info.Cause != htm.Sync {
		t.Fatalf("abort = %+v, want sync", info)
	}
	if m.Elapsed() < 3*DefaultCosts().Syscall {
		t.Fatalf("non-tx page fault too cheap: %d", m.Elapsed())
	}
}
