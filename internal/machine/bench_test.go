package machine

// Micro-benchmarks of the simulator itself: operation throughput under
// both schedulers across thread counts, transactional operation cost,
// and sampling overhead — the numbers that bound how large a workload
// the harness can run. Throughput benchmarks report ops/sec (higher is
// better) alongside ns/op so benchdiff can gate on either direction.

import (
	"fmt"
	"testing"

	"txsampler/internal/pmu"
	"txsampler/internal/telemetry"
)

// benchOps drives threads through b.N total operations (one simulated
// Compute per unit of work, split evenly across threads) under the
// given config and reports aggregate ops/sec.
func benchOps(b *testing.B, cfg Config) {
	b.ReportAllocs()
	perThread := b.N/cfg.Threads + 1
	m := New(cfg)
	b.ResetTimer()
	done := make(chan struct{})
	go func() {
		_ = m.RunAll(func(t *Thread) {
			for i := 0; i < perThread; i++ {
				t.Compute(1)
			}
		})
		close(done)
	}()
	<-done
	b.StopTimer()
	ops := float64(perThread) * float64(cfg.Threads)
	b.ReportMetric(ops/b.Elapsed().Seconds(), "ops/sec")
}

func BenchmarkOpThroughputSingleThread(b *testing.B) {
	benchOps(b, Config{Threads: 1})
}

func BenchmarkOpThroughput8Threads(b *testing.B) {
	benchOps(b, Config{Threads: 8})
}

// BenchmarkSchedulerOpsPerSec is the headline scheduler-throughput
// number: simulated operations per second in native mode (no PMU, no
// handler), where the scheduler itself is the only cost. The native
// variants exercise the default (sharded) scheduler across thread
// counts — the 8threads/1thread ratio is the scheduler's scaling
// factor on multicore hosts — and 8threads-serial pins the baton
// scheduler for comparison.
func BenchmarkSchedulerOpsPerSec(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%dthreads-native", n), func(b *testing.B) {
			benchOps(b, Config{Threads: n})
		})
	}
	b.Run("8threads-serial", func(b *testing.B) {
		benchOps(b, Config{Threads: 8, Sched: SchedSerial})
	})
}

// BenchmarkTelemetryOverhead bounds what the telemetry hooks cost the
// scheduler hot path. "off" is the shipping default — a nil tracer,
// one predictable branch per instrumentation site — under the default
// (sharded) scheduler. A tracer forces the serial scheduler, so the
// recording cost itself is measured like-for-like: "serial-off" and
// "serial-on" differ only by the tracer, and -trace is expected to
// stay within ~2x of disabled on that pair.
func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		benchOps(b, Config{Threads: 8})
	})
	b.Run("serial-off", func(b *testing.B) {
		benchOps(b, Config{Threads: 8, Sched: SchedSerial})
	})
	b.Run("serial-on", func(b *testing.B) {
		benchOps(b, Config{Threads: 8, Sched: SchedSerial, Trace: telemetry.NewTracer(0)})
	})
}

func BenchmarkTransactionalIncrement(b *testing.B) {
	b.ReportAllocs()
	m := New(Config{Threads: 1})
	a := m.Mem.AllocWords(1)
	b.ResetTimer()
	done := make(chan struct{})
	go func() {
		_ = m.RunAll(func(t *Thread) {
			for i := 0; i < b.N; i++ {
				t.Attempt(func() { t.Add(a, 1) })
			}
		})
		close(done)
	}()
	<-done
}

func BenchmarkSampledExecution(b *testing.B) {
	b.ReportAllocs()
	var p pmu.Periods
	p[pmu.Cycles] = 500
	m := New(Config{Threads: 1, Periods: p})
	m.SetHandler(&collectHandler{})
	b.ResetTimer()
	done := make(chan struct{})
	go func() {
		_ = m.RunAll(func(t *Thread) {
			for i := 0; i < b.N; i++ {
				t.Compute(10)
			}
		})
		close(done)
	}()
	<-done
}
