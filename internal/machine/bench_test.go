package machine

// Micro-benchmarks of the simulator itself: operation rendezvous
// throughput, transactional operation cost, and sampling overhead —
// the numbers that bound how large a workload the harness can run.

import (
	"testing"

	"txsampler/internal/pmu"
	"txsampler/internal/telemetry"
)

func BenchmarkOpThroughputSingleThread(b *testing.B) {
	m := New(Config{Threads: 1})
	done := make(chan struct{})
	go func() {
		_ = m.RunAll(func(t *Thread) {
			for i := 0; i < b.N; i++ {
				t.Compute(1)
			}
		})
		close(done)
	}()
	<-done
}

func BenchmarkOpThroughput8Threads(b *testing.B) {
	m := New(Config{Threads: 8})
	done := make(chan struct{})
	go func() {
		_ = m.RunAll(func(t *Thread) {
			for i := 0; i < b.N/8+1; i++ {
				t.Compute(1)
			}
		})
		close(done)
	}()
	<-done
}

// BenchmarkSchedulerOpsPerSec is the headline scheduler-throughput
// number: simulated operations per second in native mode (no PMU, no
// handler), where the scheduler itself is the only cost.
func BenchmarkSchedulerOpsPerSec(b *testing.B) {
	b.Run("1thread-native", func(b *testing.B) {
		b.ReportAllocs()
		m := New(Config{Threads: 1})
		done := make(chan struct{})
		go func() {
			_ = m.RunAll(func(t *Thread) {
				for i := 0; i < b.N; i++ {
					t.Compute(1)
				}
			})
			close(done)
		}()
		<-done
	})
	b.Run("8threads-native", func(b *testing.B) {
		b.ReportAllocs()
		m := New(Config{Threads: 8})
		done := make(chan struct{})
		go func() {
			_ = m.RunAll(func(t *Thread) {
				for i := 0; i < b.N/8+1; i++ {
					t.Compute(1)
				}
			})
			close(done)
		}()
		<-done
	})
}

// BenchmarkTelemetryOverhead bounds what the telemetry hooks cost the
// scheduler hot path. "off" is the shipping default — a nil tracer,
// one predictable branch per instrumentation site — and must stay
// within 2% of BenchmarkSchedulerOpsPerSec/8threads-native; "on"
// shows the full recording cost for comparison.
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, tr *telemetry.Tracer) {
		b.ReportAllocs()
		m := New(Config{Threads: 8, Trace: tr})
		done := make(chan struct{})
		go func() {
			_ = m.RunAll(func(t *Thread) {
				for i := 0; i < b.N/8+1; i++ {
					t.Compute(1)
				}
			})
			close(done)
		}()
		<-done
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) { run(b, telemetry.NewTracer(0)) })
}

func BenchmarkTransactionalIncrement(b *testing.B) {
	m := New(Config{Threads: 1})
	a := m.Mem.AllocWords(1)
	done := make(chan struct{})
	go func() {
		_ = m.RunAll(func(t *Thread) {
			for i := 0; i < b.N; i++ {
				t.Attempt(func() { t.Add(a, 1) })
			}
		})
		close(done)
	}()
	<-done
}

func BenchmarkSampledExecution(b *testing.B) {
	var p pmu.Periods
	p[pmu.Cycles] = 500
	m := New(Config{Threads: 1, Periods: p})
	m.SetHandler(&collectHandler{})
	done := make(chan struct{})
	go func() {
		_ = m.RunAll(func(t *Thread) {
			for i := 0; i < b.N; i++ {
				t.Compute(10)
			}
		})
		close(done)
	}()
	<-done
}
