package machine

// Equivalence of the run-quantum scheduler with the per-op schedule:
// Quantum=1 forces a rendezvous after every operation (the canonical
// smallest-clock schedule), and any larger quantum must reproduce it
// exactly — same sample stream, same clocks, same ground truth.

import (
	"reflect"
	"testing"

	"txsampler/internal/pmu"
)

type quantumRun struct {
	samples []*Sample
	elapsed uint64
	total   uint64
	commits []uint64
	aborts  []uint64
}

func runQuantumWorkload(t *testing.T, quantum int) quantumRun {
	t.Helper()
	var p pmu.Periods
	p[pmu.Cycles] = 400
	p[pmu.TxAbort] = 4
	p[pmu.TxCommit] = 8
	p[pmu.Loads] = 300
	p[pmu.Stores] = 300
	m := New(Config{Threads: 4, Seed: 42, Periods: p, StartSkew: 512, Quantum: quantum})
	h := &collectHandler{}
	m.SetHandler(h)
	a := m.Mem.AllocWords(8)
	err := m.RunAll(func(t *Thread) {
		for i := 0; i < 200; i++ {
			t.Func("worker", func() {
				t.At("loop")
				for {
					if t.Attempt(func() {
						t.Add(a.Offset(i%8), 1)
						t.Compute(5)
					}) == nil {
						break
					}
					t.Compute(20) // backoff before the retry
				}
			})
		}
	})
	if err != nil {
		t.Fatalf("quantum %d: %v", quantum, err)
	}
	r := quantumRun{samples: h.samples, elapsed: m.Elapsed(), total: m.TotalCycles()}
	g := m.GroundTruth()
	r.commits = g.PerThreadCommits
	r.aborts = g.PerThreadAborts
	return r
}

func TestQuantumSampleStreamEquivalence(t *testing.T) {
	perOp := runQuantumWorkload(t, 1)
	for _, quantum := range []int{2, 64, 0 /* DefaultQuantum */} {
		batched := runQuantumWorkload(t, quantum)
		if batched.elapsed != perOp.elapsed || batched.total != perOp.total {
			t.Fatalf("quantum %d: clocks diverge: elapsed %d vs %d, total %d vs %d",
				quantum, batched.elapsed, perOp.elapsed, batched.total, perOp.total)
		}
		if !reflect.DeepEqual(batched.commits, perOp.commits) || !reflect.DeepEqual(batched.aborts, perOp.aborts) {
			t.Fatalf("quantum %d: ground truth diverges: commits %v vs %v, aborts %v vs %v",
				quantum, batched.commits, perOp.commits, batched.aborts, perOp.aborts)
		}
		if len(batched.samples) != len(perOp.samples) {
			t.Fatalf("quantum %d: %d samples vs %d per-op", quantum, len(batched.samples), len(perOp.samples))
		}
		for i := range perOp.samples {
			if !reflect.DeepEqual(batched.samples[i], perOp.samples[i]) {
				t.Fatalf("quantum %d: sample %d diverges:\nbatched: %+v\nper-op:  %+v",
					quantum, i, batched.samples[i], perOp.samples[i])
			}
		}
	}
}

// TestQuantumValidation covers the new Config knob's edges.
func TestQuantumValidation(t *testing.T) {
	if err := (Config{Quantum: -1}).Validate(); err == nil {
		t.Fatal("negative quantum accepted")
	}
	if got := (Config{}).withDefaults().Quantum; got != DefaultQuantum {
		t.Fatalf("zero quantum defaulted to %d, want %d", got, DefaultQuantum)
	}
}
