package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// NumBuckets is the number of power-of-two histogram buckets: bucket
// i counts observations v with 2^(i-1) <= v < 2^i (bucket 0 counts
// zero), capped so the last bucket absorbs everything larger.
const NumBuckets = 32

// Counter is a monotonically increasing metric. A nil Counter ignores
// writes.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-latest metric. Volatile gauges carry wall-clock
// or otherwise non-deterministic values: they appear in the live
// self-report and debug endpoints but are excluded from serialized
// profiles and traces. A nil Gauge ignores writes.
type Gauge struct {
	v        atomic.Uint64
	volatile bool
}

// Set replaces the gauge value.
func (g *Gauge) Set(v uint64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the current value.
func (g *Gauge) Value() uint64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates a distribution in power-of-two buckets. A nil
// Histogram ignores writes.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// bucketOf returns the bucket index for one observation.
func bucketOf(v uint64) int {
	if v == 0 {
		return 0
	}
	b := bits.Len64(v)
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// metric is one registered metric of any kind.
type metric struct {
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named metrics. Registration (Counter, Gauge,
// Histogram) is get-or-create and not for hot paths: instrumented
// code registers once and holds the returned pointer. A nil Registry
// returns nil instruments, which ignore writes.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

func (r *Registry) get(name string) *metric {
	m := r.metrics[name]
	if m == nil {
		m = &metric{}
		r.metrics[name] = m
	}
	return m
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.get(name)
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge returns the named gauge, creating it on first use. volatile
// marks the value non-deterministic (wall time); volatile gauges are
// excluded from deterministic snapshots.
func (r *Registry) Gauge(name string, volatile bool) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.get(name)
	if m.gauge == nil {
		m.gauge = &Gauge{volatile: volatile}
	}
	return m.gauge
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.get(name)
	if m.hist == nil {
		m.hist = &Histogram{}
	}
	return m.hist
}

// Bucket is one non-empty histogram bucket: Count observations in
// [Lo, Hi).
type Bucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// MetricValue is one metric's snapshot, the serialized self-report
// unit. Kind is "counter", "gauge", or "histogram".
type MetricValue struct {
	Name    string   `json:"name"`
	Kind    string   `json:"kind"`
	Value   uint64   `json:"value,omitempty"`
	Count   uint64   `json:"count,omitempty"`
	Sum     uint64   `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`

	// Volatile marks wall-clock values; profile serialization drops
	// them so databases stay byte-identical across identical-seed
	// runs.
	Volatile bool `json:"-"`
}

// Snapshot returns every metric's current value sorted by name. With
// includeVolatile false the result is deterministic for a
// deterministic instrumentation stream: wall-clock gauges are
// omitted.
func (r *Registry) Snapshot(includeVolatile bool) []MetricValue {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []MetricValue
	for _, n := range names {
		m := r.metrics[n]
		if m.counter != nil {
			out = append(out, MetricValue{Name: n, Kind: "counter", Value: m.counter.Value()})
		}
		if m.gauge != nil {
			if m.gauge.volatile && !includeVolatile {
				continue
			}
			out = append(out, MetricValue{Name: n, Kind: "gauge", Value: m.gauge.Value(), Volatile: m.gauge.volatile})
		}
		if m.hist != nil {
			mv := MetricValue{Name: n, Kind: "histogram", Count: m.hist.Count(), Sum: m.hist.Sum()}
			for i := range m.hist.buckets {
				c := m.hist.buckets[i].Load()
				if c == 0 {
					continue
				}
				var lo, hi uint64
				if i > 0 {
					lo = uint64(1) << (i - 1)
				}
				if i < NumBuckets-1 {
					hi = uint64(1) << i
				}
				mv.Buckets = append(mv.Buckets, Bucket{Lo: lo, Hi: hi, Count: c})
			}
			out = append(out, mv)
		}
	}
	return out
}

// WriteText renders a snapshot as aligned plain text, the format the
// /metrics debug endpoint and the report self-report section share.
func WriteText(w io.Writer, snap []MetricValue) {
	for _, mv := range snap {
		switch mv.Kind {
		case "histogram":
			mean := float64(0)
			if mv.Count > 0 {
				mean = float64(mv.Sum) / float64(mv.Count)
			}
			fmt.Fprintf(w, "  %-44s count=%d sum=%d mean=%.1f\n", mv.Name, mv.Count, mv.Sum, mean)
			for _, b := range mv.Buckets {
				if b.Hi == 0 {
					fmt.Fprintf(w, "    [%d, inf): %d\n", b.Lo, b.Count)
				} else {
					fmt.Fprintf(w, "    [%d, %d): %d\n", b.Lo, b.Hi, b.Count)
				}
			}
		default:
			fmt.Fprintf(w, "  %-44s %d\n", mv.Name, mv.Value)
		}
	}
}
