package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Kind classifies a trace event; it selects the process track the
// event lands on in the Chrome trace and whether it is a span or an
// instant.
type Kind uint8

const (
	// KindRunSlice is one thread's baton tenure on the scheduler
	// track: from baton grant to the handoff that moved it to another
	// thread. Slice boundaries are actual thread switches of the
	// canonical per-op schedule, so they are quantum-invariant.
	KindRunSlice Kind = iota
	// KindTx is a committed transaction region (outermost XBEGIN to
	// XEND).
	KindTx
	// KindTxAbort is an aborted transaction region; Arg carries the
	// abort cause code.
	KindTxAbort
	// KindSpan is a generic named span on a machine thread track
	// (e.g. the RTM fallback path holding the global lock).
	KindSpan
	// KindInterrupt is a PMU interrupt delivery instant; Arg carries
	// the overflowed event code.
	KindInterrupt
	// KindPhase is a frontend/analyzer phase span on the analyzer
	// track, timestamped by the tracer's own virtual sequence clock.
	KindPhase
	// KindInstant is a generic named instant on a machine thread
	// track.
	KindInstant
)

// Trace process IDs: one Chrome "process" per subsystem so spans on
// the same simulated thread never overlap within one track.
const (
	PIDMachine   = 0 // transaction regions, interrupts, generic spans
	PIDScheduler = 1 // run slices (baton tenures)
	PIDAnalyzer  = 2 // frontend/analyzer phases
)

// Event is one trace entry. TS and Dur are virtual: simulated cycle
// clocks for machine events, the tracer's sequence clock for phases.
// Name must be a constant or interned string — emission never
// formats.
type Event struct {
	TS   uint64
	Dur  uint64
	TID  int32
	Kind Kind
	Arg  uint64
	Name string
}

// DefaultTraceCapacity is the ring size NewTracer(0) allocates. At 64
// bytes an event, the default ring holds ~16 MiB; when it fills, the
// oldest events are overwritten (and counted as dropped) so tracing
// never grows without bound — the same discipline the paper applies
// to collector state.
const DefaultTraceCapacity = 1 << 18

// Tracer records events into a fixed ring buffer. The zero value is
// not usable; construct with NewTracer. A nil Tracer drops every
// event at the cost of one branch.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event
	head    int // next overwrite position once the ring is full
	full    bool
	dropped uint64
	seq     uint64            // virtual clock for phase events
	open    map[string]uint64 // open phase name -> start seq
}

// NewTracer returns a tracer with the given ring capacity (0 selects
// DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Event, 0, capacity), open: make(map[string]uint64)}
}

// Enabled reports whether events are being recorded. Instrumentation
// sites guard formatting or any other per-event work behind it.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit records one event, overwriting the oldest when the ring is
// full. Safe for concurrent use; allocation-free.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.emitLocked(ev)
	t.mu.Unlock()
}

// EmitBatch records a batch of events under one lock acquisition —
// the bulk path instrumented threads use to amortize the ring mutex
// across a whole quantum of buffered events.
func (t *Tracer) EmitBatch(evs []Event) {
	if t == nil || len(evs) == 0 {
		return
	}
	t.mu.Lock()
	for _, ev := range evs {
		t.emitLocked(ev)
	}
	t.mu.Unlock()
}

func (t *Tracer) emitLocked(ev Event) {
	if !t.full && len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.full = true
		t.buf[t.head] = ev
		t.head++
		if t.head == len(t.buf) {
			t.head = 0
		}
		t.dropped++
	}
}

// BeginPhase opens a named phase span on the analyzer track,
// timestamped with the tracer's virtual sequence clock (deterministic,
// unlike wall time). Phases may nest under distinct names.
func (t *Tracer) BeginPhase(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	t.open[name] = t.seq
	t.mu.Unlock()
}

// EndPhase closes a phase opened by BeginPhase and records its span.
// Unmatched ends are ignored.
func (t *Tracer) EndPhase(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	start, ok := t.open[name]
	if ok {
		delete(t.open, name)
		t.seq++
		end := t.seq
		t.mu.Unlock()
		t.Emit(Event{TS: start, Dur: end - start, Kind: KindPhase, Name: name})
		return
	}
	t.mu.Unlock()
}

// Dropped returns how many events were overwritten by ring overflow.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Events returns a chronological copy of the buffered events (oldest
// first, in emission order).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if t.full {
		out = append(out, t.buf[t.head:]...)
		out = append(out, t.buf[:t.head]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// chromeEvent is one entry of the Chrome trace-event format.
type chromeEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TS    uint64            `json:"ts"`
	Dur   *uint64           `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int32             `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// pid returns the Chrome process track for an event kind.
func (k Kind) pid() int {
	switch k {
	case KindRunSlice:
		return PIDScheduler
	case KindPhase:
		return PIDAnalyzer
	}
	return PIDMachine
}

func (e Event) chromeName() string {
	if e.Name != "" {
		return e.Name
	}
	switch e.Kind {
	case KindRunSlice:
		return "run"
	case KindTx:
		return "tx"
	case KindTxAbort:
		return "tx-abort"
	case KindInterrupt:
		return "pmi"
	}
	return "event"
}

// WriteChromeTrace exports the buffered events as Chrome trace-event
// JSON (the format chrome://tracing and Perfetto load). Events are
// stably ordered by (timestamp, track, thread) before encoding, so
// the output is a pure function of the buffered event multiset —
// byte-identical no matter how per-thread batches interleaved in the
// ring.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if ap, bp := a.Kind.pid(), b.Kind.pid(); ap != bp {
			return ap < bp
		}
		return a.TID < b.TID
	})
	out := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: make([]chromeEvent, 0, len(events)+8)}
	// Name the process tracks so the viewer groups them sensibly.
	for _, meta := range []struct {
		pid  int
		name string
	}{{PIDMachine, "machine"}, {PIDScheduler, "scheduler"}, {PIDAnalyzer, "analyzer"}} {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Phase: "M", PID: meta.pid,
			Args: map[string]string{"name": meta.name},
		})
	}
	for _, e := range events {
		ce := chromeEvent{Name: e.chromeName(), TS: e.TS, PID: e.Kind.pid(), TID: e.TID}
		switch e.Kind {
		case KindInterrupt, KindInstant:
			ce.Phase = "i"
			ce.Scope = "t"
		default:
			ce.Phase = "X"
			dur := e.Dur
			ce.Dur = &dur
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	return nil
}
