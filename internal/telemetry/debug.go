package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the debug mux the CLIs expose behind
// -debug-addr: the standard net/http/pprof profiles, the process-wide
// expvar dump, a plain-text /metrics rendering of reg (live, including
// volatile wall-clock gauges), and the /healthz and /readyz probes.
// reg may be nil, in which case /metrics reports no metrics.
//
// /healthz answers 200 while the process serves HTTP at all (liveness).
// /readyz runs every supplied ready func and answers 503 with the
// first failure (readiness); with no ready funcs a serving process is
// trivially ready. Long-running daemons wire their admission state in
// here; one-shot CLIs get the endpoints for free so fleet tooling can
// probe every txsampler process the same way.
func DebugHandler(reg *Registry, ready ...func() error) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteText(w, reg.Snapshot(true))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		for _, probe := range ready {
			if err := probe(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "txsampler debug endpoints: /debug/pprof/ /debug/vars /metrics /healthz /readyz")
	})
	return mux
}

// DebugServer is a running debug endpoint; Close shuts it down.
type DebugServer struct {
	// Addr is the bound address (useful when the caller asked for
	// port 0).
	Addr string
	ln   net.Listener
}

// Close stops the server's listener.
func (d *DebugServer) Close() error { return d.ln.Close() }

// ServeDebug binds addr and serves DebugHandler(reg, ready...) on it
// in a background goroutine. It returns once the listener is bound so
// callers can print the effective address; serving errors after a
// clean bind are ignored (the endpoint is best-effort diagnostics).
func ServeDebug(addr string, reg *Registry, ready ...func() error) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug listener: %w", err)
	}
	srv := &http.Server{Handler: DebugHandler(reg, ready...)}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{Addr: ln.Addr().String(), ln: ln}, nil
}
