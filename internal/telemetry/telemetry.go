// Package telemetry is TxSampler-Go's zero-dependency self-profiling
// layer: the profiler measuring itself, the property the paper sells
// ("lightweight, always-on", §1, §7.3) applied to our own
// reproduction.
//
// It provides three facilities:
//
//   - Tracer: a fixed-capacity ring buffer of span/instant events —
//     scheduler run slices, transaction regions with abort causes,
//     PMU interrupt deliveries, RTM fallback serialization, analyzer
//     phases — exported as Chrome trace-event JSON loadable in
//     chrome://tracing or https://ui.perfetto.dev.
//   - Registry: a counter/gauge/histogram metrics registry rendered
//     as the "Profiler self-report" section of the text and HTML
//     reports and serialized into profile databases.
//   - ServeDebug: opt-in net/http/pprof + expvar + /metrics endpoints
//     for the CLIs (-debug-addr).
//
// Determinism contract: every value a simulated run feeds the tracer
// is virtual — thread cycle clocks, event kinds, cause codes — so for
// a fixed seed the exported trace is byte-identical across runs and
// invariant to the scheduler quantum and any -parallel sharding (the
// schedule itself is quantum-invariant; see DESIGN.md §3.1 and §8).
// Wall-clock measurements (per-phase wall time) are recorded as
// volatile gauges: visible in the live self-report and debug
// endpoints, excluded from traces and profile databases so those
// artifacts stay diffable in CI.
//
// All entry points are nil-receiver safe: a nil *Tracer, *Registry,
// *Counter, *Gauge, or *Histogram ignores writes, so instrumented
// code pays one branch — no allocation, no formatting — when
// telemetry is disabled.
package telemetry
