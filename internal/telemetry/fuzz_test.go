package telemetry

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"testing"
)

// FuzzWriteChromeTrace hardens the trace-event writer: any event
// sequence — arbitrary timestamps, durations, kinds, thread IDs, ring
// wraparound — must serialize to valid JSON without panicking, and
// the ring must never hold more than its capacity.
func FuzzWriteChromeTrace(f *testing.F) {
	f.Add([]byte{}, uint8(4))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, uint8(1))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 7, 1, 2, 3}, uint8(2))
	f.Add(bytes.Repeat([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, 8), uint8(3))

	f.Fuzz(func(t *testing.T, data []byte, capacity uint8) {
		cap := int(capacity%16) + 1
		tr := NewTracer(cap)
		// 11 bytes per event: ts(4) dur(2) tid(2) kind(1) arg(1) name(1).
		n := 0
		for i := 0; i+11 <= len(data); i += 11 {
			tr.Emit(Event{
				TS:   uint64(binary.LittleEndian.Uint32(data[i:])),
				Dur:  uint64(binary.LittleEndian.Uint16(data[i+4:])),
				TID:  int32(int16(binary.LittleEndian.Uint16(data[i+6:]))),
				Kind: Kind(data[i+8] % 8), // includes one out-of-range kind
				Arg:  uint64(data[i+9]),
				Name: fmt.Sprintf("ev%d", data[i+10]%8),
			})
			n++
		}
		if got := tr.Len(); got > cap || (n < cap && got != n) {
			t.Fatalf("ring holds %d events after %d emits at capacity %d", got, n, cap)
		}
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatalf("WriteChromeTrace: %v", err)
		}
		if !json.Valid(buf.Bytes()) {
			t.Fatalf("trace is not valid JSON: %.200s", buf.String())
		}
		// The writer must be repeatable (no internal state consumed).
		var again bytes.Buffer
		if err := tr.WriteChromeTrace(&again); err != nil {
			t.Fatalf("second WriteChromeTrace: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), again.Bytes()) {
			t.Fatal("WriteChromeTrace is not repeatable")
		}
	})
}
