package telemetry

import "testing"

// TestNilMetricsSafe: nil metric handles are the disabled-telemetry
// fast path — writes are no-ops and reads are zero, never panics.
func TestNilMetricsSafe(t *testing.T) {
	var c *Counter
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(7)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(9)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram recorded")
	}
}
