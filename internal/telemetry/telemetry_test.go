package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsIgnoreWrites(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Emit(Event{Kind: KindTx})
	tr.BeginPhase("p")
	tr.EndPhase("p")
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer recorded something")
	}

	var reg *Registry
	reg.Counter("c").Add(1)
	reg.Gauge("g", false).Set(1)
	reg.Histogram("h").Observe(1)
	if reg.Snapshot(true) != nil {
		t.Fatal("nil registry produced a snapshot")
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 7; i++ {
		tr.Emit(Event{TS: uint64(i), Kind: KindInstant})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", tr.Dropped())
	}
	evs := tr.Events()
	for i, ev := range evs {
		if want := uint64(i + 3); ev.TS != want {
			t.Fatalf("event %d has TS %d, want %d (oldest-first order)", i, ev.TS, want)
		}
	}
}

func TestPhasesNestAndIgnoreUnmatchedEnd(t *testing.T) {
	tr := NewTracer(16)
	tr.BeginPhase("outer")
	tr.BeginPhase("inner")
	tr.EndPhase("inner")
	tr.EndPhase("outer")
	tr.EndPhase("never-opened")
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d phase events, want 2", len(evs))
	}
	// inner closes first; both are KindPhase with seq timestamps.
	if evs[0].Name != "inner" || evs[1].Name != "outer" {
		t.Fatalf("phase order = %q, %q", evs[0].Name, evs[1].Name)
	}
	if evs[1].TS >= evs[1].TS+evs[1].Dur || evs[0].TS <= evs[1].TS {
		t.Fatal("virtual phase clocks are not ordered")
	}
}

func TestChromeTraceIsValidJSONAndDeterministic(t *testing.T) {
	emit := func() *Tracer {
		tr := NewTracer(64)
		tr.Emit(Event{TS: 10, Dur: 5, TID: 0, Kind: KindRunSlice})
		tr.Emit(Event{TS: 12, Dur: 3, TID: 0, Kind: KindTx})
		tr.Emit(Event{TS: 16, Dur: 2, TID: 1, Kind: KindTxAbort, Arg: 1, Name: "tx-abort:conflict"})
		tr.Emit(Event{TS: 18, TID: 1, Kind: KindInterrupt, Name: "pmi:cycles"})
		tr.BeginPhase("analyze")
		tr.EndPhase("analyze")
		return tr
	}
	var a, b bytes.Buffer
	if err := emit().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := emit().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical event streams exported different bytes")
	}

	var out struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			PID   int    `json:"pid"`
			Scope string `json:"s"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(a.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var meta, spans, instants int
	pids := map[int]bool{}
	for _, ev := range out.TraceEvents {
		pids[ev.PID] = true
		switch ev.Phase {
		case "M":
			meta++
		case "X":
			spans++
		case "i":
			instants++
			if ev.Scope != "t" {
				t.Fatalf("instant %q has scope %q, want t", ev.Name, ev.Scope)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Phase)
		}
	}
	if meta != 3 || spans != 4 || instants != 1 {
		t.Fatalf("meta/spans/instants = %d/%d/%d, want 3/4/1", meta, spans, instants)
	}
	if !pids[PIDMachine] || !pids[PIDScheduler] || !pids[PIDAnalyzer] {
		t.Fatalf("missing subsystem tracks: %v", pids)
	}
}

func TestEmitIsConcurrencySafe(t *testing.T) {
	tr := NewTracer(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Emit(Event{TS: uint64(i), TID: int32(g), Kind: KindInstant})
			}
		}(g)
	}
	wg.Wait()
	if got := uint64(tr.Len()) + tr.Dropped(); got != 800 {
		t.Fatalf("buffered+dropped = %d, want 800", got)
	}
}

func TestRegistrySnapshotSortedAndVolatileFiltered(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.counter").Add(2)
	reg.Counter("b.counter").Add(3)
	reg.Gauge("c.wall", true).Set(999)
	reg.Gauge("a.gauge", false).Set(7)
	reg.Histogram("d.hist").Observe(0)
	reg.Histogram("d.hist").Observe(3)
	reg.Histogram("d.hist").Observe(300)

	det := reg.Snapshot(false)
	names := make([]string, len(det))
	for i, mv := range det {
		names[i] = mv.Name
	}
	if strings.Join(names, ",") != "a.gauge,b.counter,d.hist" {
		t.Fatalf("deterministic snapshot = %v", names)
	}
	if det[1].Value != 5 {
		t.Fatalf("counter = %d, want 5", det[1].Value)
	}
	if det[2].Count != 3 || det[2].Sum != 303 || len(det[2].Buckets) != 3 {
		t.Fatalf("histogram = %+v", det[2])
	}

	live := reg.Snapshot(true)
	if len(live) != 4 {
		t.Fatalf("live snapshot has %d entries, want 4", len(live))
	}
	for _, mv := range live {
		if mv.Name == "c.wall" && !mv.Volatile {
			t.Fatal("wall gauge not marked volatile")
		}
	}
}

func TestWriteTextRendersEveryKind(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("samples").Add(42)
	reg.Histogram("weights").Observe(100)
	var b strings.Builder
	WriteText(&b, reg.Snapshot(true))
	out := b.String()
	for _, want := range []string{"samples", "42", "weights", "count=1 sum=100 mean=100.0", "[64, 128): 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestDebugHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits").Add(9)
	h := DebugHandler(reg)
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}
	if rec := get("/metrics"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "hits") {
		t.Fatalf("/metrics: code %d body %q", rec.Code, rec.Body.String())
	}
	if rec := get("/debug/vars"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "memstats") {
		t.Fatalf("/debug/vars: code %d", rec.Code)
	}
	if rec := get("/debug/pprof/"); rec.Code != 200 {
		t.Fatalf("/debug/pprof/: code %d", rec.Code)
	}
	if rec := get("/"); rec.Code != 200 {
		t.Fatalf("/: code %d", rec.Code)
	}
	if rec := get("/nope"); rec.Code != 404 {
		t.Fatalf("/nope: code %d, want 404", rec.Code)
	}
}

func TestServeDebugBindsEphemeralPort(t *testing.T) {
	srv, err := ServeDebug("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr == "" || strings.HasSuffix(srv.Addr, ":0") {
		t.Fatalf("bound address %q not resolved", srv.Addr)
	}
}
