package txsampler_test

// Cross-mode elision equivalence suite: the same workload at the same
// seed must compute the same result with elision off and on, under
// every hybrid policy and any scheduler quantum. Byte-identical final
// memory proves the ladder (speculation, software slow path, lock
// acquisition) leaves no residue — a failed speculative attempt never
// leaks a partial update.

import (
	"bytes"
	"runtime"
	"testing"

	"txsampler"
	"txsampler/internal/faults"
	"txsampler/internal/htmbench"
	"txsampler/internal/machine"
	"txsampler/internal/profile"
	"txsampler/internal/progen"
)

var elideWorkloads = []string{
	"elide/sharded-map",
	"elide/read-mostly",
	"elide/counter",
	"elide/syscall-section",
}

// runElide executes a workload natively under one (policy, elision,
// quantum) triple, runs its own Check, and returns the final memory
// fingerprint.
func runElide(t *testing.T, w *htmbench.Workload, seed int64, pol machine.HybridPolicy, el machine.ElisionMode, quantum int) uint64 {
	t.Helper()
	m := machine.New(machine.Config{
		Threads: w.DefaultThreads, Cache: txsampler.BenchCache(),
		Seed: seed, StartSkew: 1024, Hybrid: pol, Elision: el, Quantum: quantum,
	})
	inst := w.BuildInstance(m, nil)
	if err := m.Run(inst.Bodies...); err != nil {
		t.Fatalf("%s [%v elision=%v q=%d]: %v", w.Name, pol, el, quantum, err)
	}
	if inst.Check != nil {
		if err := inst.Check(m); err != nil {
			t.Fatalf("%s [%v elision=%v q=%d]: result check failed: %v", w.Name, pol, el, quantum, err)
		}
	}
	return m.Mem.Fingerprint()
}

// TestElisionWorkloadEquivalence runs every elide-suite workload
// across elision off/on x all four hybrid policies x two scheduler
// quanta and requires one final memory image from all of them.
func TestElisionWorkloadEquivalence(t *testing.T) {
	for _, name := range elideWorkloads {
		w, err := htmbench.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			base := runElide(t, w, 1, machine.HybridLockOnly, machine.ElisionOff, 0)
			for _, pol := range allPolicies() {
				for _, el := range []machine.ElisionMode{machine.ElisionOff, machine.ElisionOn} {
					for _, quantum := range []int{0, 7} {
						if pol == machine.HybridLockOnly && el == machine.ElisionOff && quantum == 0 {
							continue
						}
						if fp := runElide(t, w, 1, pol, el, quantum); fp != base {
							t.Errorf("final memory under %v elision=%v q=%d differs from plain lock-only (%#x vs %#x)",
								pol, el, quantum, fp, base)
						}
					}
				}
			}
		})
	}
}

// TestElisionProgenEquivalence runs generated elision-biased programs
// (per-region elidable locks with by-construction verdicts) across
// elision off/on x all policies; the program's check pins every
// program word, so fingerprint equality is the no-residue assertion.
func TestElisionProgenEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		p := progen.Generate(progen.Config{Seed: seed, ElisionBias: true})
		w := p.Workload()
		base := runElide(t, w, seed, machine.HybridLockOnly, machine.ElisionOff, 0)
		for _, pol := range allPolicies() {
			for _, el := range []machine.ElisionMode{machine.ElisionOff, machine.ElisionOn} {
				if pol == machine.HybridLockOnly && el == machine.ElisionOff {
					continue
				}
				if fp := runElide(t, w, seed, pol, el, 0); fp != base {
					t.Errorf("%s: final memory under %v elision=%v differs from plain lock-only (%#x vs %#x)",
						p.Name, pol, el, fp, base)
				}
			}
		}
	}
}

// TestElisionGOMAXPROCSInvariance pins the simulator's determinism
// against host parallelism: an elided run must fingerprint identically
// with the Go runtime throttled to one CPU.
func TestElisionGOMAXPROCSInvariance(t *testing.T) {
	w, err := htmbench.Get("elide/sharded-map")
	if err != nil {
		t.Fatal(err)
	}
	base := runElide(t, w, 1, machine.HybridStmFallback, machine.ElisionOn, 0)
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	if fp := runElide(t, w, 1, machine.HybridStmFallback, machine.ElisionOn, 0); fp != base {
		t.Errorf("final memory at GOMAXPROCS=1 differs (%#x vs %#x)", fp, base)
	}
}

// TestElisionProfiledVerdicts drives the elide suite through the full
// profiled pipeline with elision on and checks the per-lock-site
// verdict table: the by-construction winners must win, the poisoned
// section must lose, and with elision off every site must report
// plain-lock.
func TestElisionProfiledVerdicts(t *testing.T) {
	wantVerdict := map[string]string{
		"elide/sharded-map":     "win",
		"elide/read-mostly":     "win",
		"elide/syscall-section": "lose",
	}
	for name, want := range wantVerdict {
		res, err := txsampler.Run(name, txsampler.Options{Seed: 1, Profile: true, Elision: machine.ElisionOn})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sites := res.Report.ElisionSites()
		if len(sites) == 0 {
			t.Fatalf("%s: no elision sites in report", name)
		}
		for _, s := range sites {
			if !s.Elided {
				t.Errorf("%s: site %s not marked elided", name, s.Site)
			}
			if got := s.Verdict(); got != want {
				t.Errorf("%s: site %s verdict = %q, want %q", name, s.Site, got, want)
			}
		}
	}

	// Elision off: the same locks run plain, and the analyzer must say
	// so rather than fabricate a verdict.
	res, err := txsampler.Run("elide/sharded-map", txsampler.Options{Seed: 1, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Report.ElisionSites() {
		if got := s.Verdict(); got != "plain-lock" {
			t.Errorf("elision off: site %s verdict = %q, want plain-lock", s.Site, got)
		}
	}
}

// TestElisionStormChaos drives the whole elide suite, eliding, through
// an ambient-abort storm (the elide-storm preset): the ladder must
// neither hang nor corrupt results, the run must stay byte-identical
// across repetitions, degradation must be flagged, and the analyzer
// must still produce a verdict for every site.
func TestElisionStormChaos(t *testing.T) {
	plan := faults.Presets["elide-storm"]
	for _, name := range elideWorkloads {
		t.Run(name, func(t *testing.T) {
			run := func() *txsampler.Result {
				res, err := txsampler.Run(name, txsampler.Options{
					Seed: 7, Profile: true, Elision: machine.ElisionOn, Faults: plan,
				})
				if err != nil {
					t.Fatalf("%s under elide-storm: %v", name, err)
				}
				return res
			}
			res := run()
			if res.Report.Quality.Degraded() == 0 {
				t.Error("storm fired but the profile does not report degradation")
			}
			sites := res.Report.ElisionSites()
			if len(sites) == 0 {
				t.Fatal("no elision sites survived the storm")
			}
			for _, s := range sites {
				if !s.Elided {
					t.Errorf("site %s lost its elided marking under the storm", s.Site)
				}
			}
			var a, b bytes.Buffer
			if err := profile.FromReport(res.Report).Write(&a); err != nil {
				t.Fatal(err)
			}
			if err := profile.FromReport(run().Report).Write(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Error("same seed produced different profiles under the storm")
			}
		})
	}
}
